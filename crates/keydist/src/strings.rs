//! Order-preserving string → ring-position encoding.
//!
//! Range-queriable overlays index *unhashed* keys: if `a < b` as strings
//! then `encode(a) <= encode(b)` on the (linearised) ring, so peers own
//! contiguous lexical ranges and prefix/range queries touch contiguous
//! peers. The encoding takes the first eight bytes of the string as a
//! big-endian base-256 fraction — exactly the standard prefix fixed-point
//! embedding.

use oscar_types::Id;

/// Encodes a byte string order-preservingly into a ring position.
///
/// Properties (see tests):
/// * `a <= b` (bytewise) implies `encode(a).raw() <= encode(b).raw()`;
/// * strings sharing an 8-byte prefix collide (acceptable: the corpus
///   generator keeps discriminating bytes early, and ties are broken by
///   the caller where uniqueness matters).
pub fn encode_string_key(s: &str) -> Id {
    let bytes = s.as_bytes();
    let mut buf = [0u8; 8];
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    Id::new(u64::from_be_bytes(buf))
}

/// Case-normalising variant: Gnutella clients match filenames
/// case-insensitively, so the corpus is indexed lowercased.
pub fn encode_filename_key(name: &str) -> Id {
    let lowered: String = name
        .chars()
        .take(8)
        .flat_map(|c| c.to_lowercase())
        .collect();
    encode_string_key(&lowered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn preserves_lexicographic_order() {
        let words = ["", "a", "aa", "ab", "abba", "b", "ba", "zz"];
        let keys: Vec<Id> = words.iter().map(|w| encode_string_key(w)).collect();
        for w in keys.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn prefix_extension_does_not_decrease() {
        assert!(encode_string_key("abc") <= encode_string_key("abcd"));
    }

    #[test]
    fn filename_encoding_is_case_insensitive() {
        assert_eq!(
            encode_filename_key("MyFile.MP3"),
            encode_filename_key("myfile.mp3")
        );
    }

    #[test]
    fn long_strings_use_first_eight_bytes() {
        assert_eq!(
            encode_string_key("abcdefghSUFFIX1"),
            encode_string_key("abcdefghSUFFIX2")
        );
    }

    proptest! {
        #[test]
        fn prop_order_preserving(a in "[ -~]{0,16}", b in "[ -~]{0,16}") {
            // ASCII printable strings: bytewise order == char order
            let (ka, kb) = (encode_string_key(&a), encode_string_key(&b));
            if a.as_bytes() <= b.as_bytes() {
                prop_assert!(ka <= kb || a.as_bytes().iter().take(8).eq(b.as_bytes().iter().take(8)));
            }
        }

        #[test]
        fn prop_deterministic(s in "\\PC{0,32}") {
            prop_assert_eq!(encode_string_key(&s), encode_string_key(&s));
        }
    }
}
