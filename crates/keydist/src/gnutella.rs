//! Synthetic Gnutella filename key distribution.
//!
//! The paper draws peer identifiers "from the Gnutella filename
//! distribution" — a trace we do not have. This module substitutes a
//! generative model that reproduces the *shape* that matters to Oscar
//! (DESIGN.md §2):
//!
//! * a Zipf-popular vocabulary (few words dominate file names, long tail);
//! * file names composed of one to a few words plus a media extension;
//! * order-preserving encoding, so popular leading words create sharp
//!   spikes in the key space separated by large deserts.
//!
//! The resulting density over the ring is wildly non-uniform and "spiky" —
//! the regime in which Mercury's uniform-resolution sampling fails while
//! Oscar's median chain adapts.

use crate::strings::encode_filename_key;
use crate::zipf::zipf_cdf_table;
use crate::KeyDistribution;
use oscar_types::{Id, SeedTree};
use rand::{Rng, RngCore};

/// Tuning knobs of the synthetic filename corpus.
#[derive(Clone, Debug)]
pub struct GnutellaConfig {
    /// Vocabulary size.
    pub vocabulary: usize,
    /// Zipf exponent of word popularity (≈0.9–1.0 for file-sharing corpora).
    pub zipf_exponent: f64,
    /// Maximum words per file name.
    pub max_words: usize,
    /// Probability of adding one more word (geometric length model).
    pub continuation_prob: f64,
    /// Seed for vocabulary construction (not per-sample randomness).
    pub corpus_seed: u64,
}

impl Default for GnutellaConfig {
    fn default() -> Self {
        GnutellaConfig {
            vocabulary: 4096,
            zipf_exponent: 0.95,
            max_words: 4,
            continuation_prob: 0.55,
            corpus_seed: 0x006E_7574_656C_6C61, // "nutella"
        }
    }
}

/// File extensions with Gnutella-era popularity (media-heavy).
const EXTENSIONS: &[(&str, f64)] = &[
    (".mp3", 0.58),
    (".avi", 0.14),
    (".mpg", 0.08),
    (".zip", 0.07),
    (".exe", 0.05),
    (".jpg", 0.05),
    (".wav", 0.03),
];

/// Synthetic Gnutella filename key distribution.
pub struct GnutellaKeys {
    words: Vec<String>,
    word_cdf: Vec<f64>,
    ext_cdf: Vec<f64>,
    config: GnutellaConfig,
}

impl GnutellaKeys {
    /// Builds the corpus model from a configuration.
    pub fn new(config: GnutellaConfig) -> Self {
        assert!(config.vocabulary > 0, "vocabulary must be non-empty");
        assert!(config.max_words >= 1);
        assert!((0.0..1.0).contains(&config.continuation_prob));
        // lint:allow(rng-discipline, the corpus is rooted at an explicit caller-provided seed — a distribution entry point)
        let mut rng = SeedTree::new(config.corpus_seed).child(0x90).rng();
        // Letter frequencies for leading characters: realistic corpora are
        // *not* uniform over the alphabet, which concentrates mass further.
        const LETTERS: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
        const LETTER_WEIGHTS: [f64; 26] = [
            8.2, 1.5, 2.8, 4.3, 12.7, 2.2, 2.0, 6.1, 7.0, 0.2, 0.8, 4.0, 2.4, 6.7, 7.5, 1.9, 0.1,
            6.0, 6.3, 9.1, 2.8, 1.0, 2.4, 0.2, 2.0, 0.1,
        ];
        let letter_total: f64 = LETTER_WEIGHTS.iter().sum();
        let pick_letter = |rng: &mut rand::rngs::SmallRng| {
            let mut u: f64 = rng.gen::<f64>() * letter_total;
            for (i, &w) in LETTER_WEIGHTS.iter().enumerate() {
                if u < w {
                    return LETTERS[i] as char;
                }
                u -= w;
            }
            'z'
        };
        let mut words = Vec::with_capacity(config.vocabulary);
        for _ in 0..config.vocabulary {
            let len = rng.gen_range(3..=9);
            let w: String = (0..len).map(|_| pick_letter(&mut rng)).collect();
            words.push(w);
        }
        let word_cdf = zipf_cdf_table(config.vocabulary, config.zipf_exponent);
        let mut cum = 0.0;
        let mut ext_cdf: Vec<f64> = EXTENSIONS
            .iter()
            .map(|&(_, w)| {
                cum += w;
                cum
            })
            .collect();
        let total = *ext_cdf.last().expect("non-empty");
        for v in ext_cdf.iter_mut() {
            *v /= total;
        }
        GnutellaKeys {
            words,
            word_cdf,
            ext_cdf,
            config,
        }
    }

    fn pick_word(&self, rng: &mut dyn RngCore) -> &str {
        let u: f64 = rng.gen();
        let idx = match self
            .word_cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.words.len() - 1),
        };
        &self.words[idx]
    }

    fn pick_extension(&self, rng: &mut dyn RngCore) -> &'static str {
        let u: f64 = rng.gen();
        let idx = match self
            .ext_cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(EXTENSIONS.len() - 1),
        };
        EXTENSIONS[idx].0
    }

    /// Generates one synthetic file name (also used by examples).
    pub fn sample_filename(&self, rng: &mut dyn RngCore) -> String {
        let mut name = String::with_capacity(32);
        name.push_str(self.pick_word(rng));
        for _ in 1..self.config.max_words {
            if rng.gen::<f64>() >= self.config.continuation_prob {
                break;
            }
            name.push('_');
            name.push_str(self.pick_word(rng));
        }
        name.push_str(self.pick_extension(rng));
        name
    }

    /// The vocabulary (test/diagnostic access).
    pub fn vocabulary(&self) -> &[String] {
        &self.words
    }
}

impl Default for GnutellaKeys {
    fn default() -> Self {
        GnutellaKeys::new(GnutellaConfig::default())
    }
}

impl KeyDistribution for GnutellaKeys {
    fn sample(&self, rng: &mut dyn RngCore) -> Id {
        let name = self.sample_filename(rng);
        encode_filename_key(&name)
    }

    fn name(&self) -> &str {
        "gnutella-filenames"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mass_in_top_bins, sample_n};
    use oscar_types::SeedTree;

    #[test]
    fn filenames_look_like_filenames() {
        let g = GnutellaKeys::default();
        let mut rng = SeedTree::new(5).rng();
        for _ in 0..100 {
            let f = g.sample_filename(&mut rng);
            assert!(f.contains('.'), "no extension in {f}");
            assert!(f.len() >= 4, "too short: {f}");
            assert!(f
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b == b'_' || b == b'.' || b.is_ascii_digit()));
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = GnutellaKeys::default();
        let b = GnutellaKeys::default();
        assert_eq!(a.vocabulary(), b.vocabulary());
        let ka = sample_n(&a, 32, &mut SeedTree::new(1).rng());
        let kb = sample_n(&b, 32, &mut SeedTree::new(1).rng());
        assert_eq!(ka, kb);
    }

    #[test]
    fn key_distribution_is_heavily_skewed() {
        let g = GnutellaKeys::default();
        let keys = sample_n(&g, 30_000, &mut SeedTree::new(2).rng());
        let m = mass_in_top_bins(&keys, 1000, 0.05);
        // Spiky: the top 5% of fine bins should hold well over half the mass.
        assert!(m > 0.5, "Gnutella model insufficiently skewed: {m}");
    }

    #[test]
    fn popular_word_dominates_prefix_region() {
        let g = GnutellaKeys::default();
        let top_word = &g.vocabulary()[0];
        let mut rng = SeedTree::new(3).rng();
        let hits = (0..5000)
            .filter(|_| g.sample_filename(&mut rng).starts_with(top_word.as_str()))
            .count();
        // Zipf rank-1 mass over 4096 words with s=.95 is ≈ 7-9%.
        assert!(hits > 150, "rank-1 word frequency too low: {hits}");
    }

    #[test]
    fn different_corpus_seed_changes_vocabulary() {
        let a = GnutellaKeys::default();
        let b = GnutellaKeys::new(GnutellaConfig {
            corpus_seed: 999,
            ..GnutellaConfig::default()
        });
        assert_ne!(a.vocabulary(), b.vocabulary());
    }

    #[test]
    #[should_panic(expected = "vocabulary must be non-empty")]
    fn zero_vocabulary_panics() {
        GnutellaKeys::new(GnutellaConfig {
            vocabulary: 0,
            ..GnutellaConfig::default()
        });
    }
}
