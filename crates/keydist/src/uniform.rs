//! Uniform key distribution — the homogeneity baseline.

use crate::KeyDistribution;
use oscar_types::Id;
use rand::RngCore;

/// Keys uniform over the whole ring.
#[derive(Copy, Clone, Debug, Default)]
pub struct UniformKeys;

impl KeyDistribution for UniformKeys {
    fn sample(&self, rng: &mut dyn RngCore) -> Id {
        Id::new(rng.next_u64())
    }

    fn name(&self) -> &str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_n;
    use oscar_types::SeedTree;

    #[test]
    fn covers_the_ring_roughly_evenly() {
        let keys = sample_n(&UniformKeys, 10_000, &mut SeedTree::new(7).rng());
        let mut counts = [0usize; 8];
        for k in keys {
            counts[(k.to_unit() * 8.0) as usize % 8] += 1;
        }
        for c in counts {
            // expectation 1250; allow generous slack
            assert!((800..1800).contains(&c), "octant count {c}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = sample_n(&UniformKeys, 16, &mut SeedTree::new(9).rng());
        let b = sample_n(&UniformKeys, 16, &mut SeedTree::new(9).rng());
        assert_eq!(a, b);
    }
}
