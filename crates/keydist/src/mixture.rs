//! Mixtures of narrow clusters — "totally arbitrary" spiky distributions.
//!
//! The paper's argument against Mercury is that real key densities are
//! arbitrary: sharp spikes separated by deserts, at unpredictable places.
//! [`MixtureKeys`] composes any weighted set of component distributions;
//! [`ClusteredKeys`] is the ready-made spiky instance used in tests and
//! ablations (Zipf-weighted narrow Gaussian clusters at random centres).

use crate::{zipf_cdf_table, KeyDistribution};
use oscar_types::{Id, SeedTree};
use rand::{Rng, RngCore};

/// A normal (Gaussian) cluster wrapped onto the ring.
///
/// Sampling uses Box–Muller; the result wraps around the ring, which is the
/// natural way to put a bump of width `sigma` at `center` on circular space.
#[derive(Copy, Clone, Debug)]
pub struct NormalCluster {
    /// Cluster centre on the unit interval.
    pub center: f64,
    /// Standard deviation on the unit interval (e.g. `1e-3` = very sharp).
    pub sigma: f64,
}

impl NormalCluster {
    fn sample_unit(&self, rng: &mut dyn RngCore) -> f64 {
        // Box-Muller transform; one draw per call is fine at our rates.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.center + z * self.sigma
    }
}

impl KeyDistribution for NormalCluster {
    fn sample(&self, rng: &mut dyn RngCore) -> Id {
        Id::from_unit(self.sample_unit(rng))
    }

    fn name(&self) -> &str {
        "normal-cluster"
    }
}

/// Weighted mixture of key distributions.
pub struct MixtureKeys {
    components: Vec<Box<dyn KeyDistribution>>,
    /// Cumulative weights, last element exactly 1.0.
    cum_weights: Vec<f64>,
    name: String,
}

impl MixtureKeys {
    /// Builds a mixture; weights are normalised.
    ///
    /// # Panics
    /// If empty, lengths differ, or weights are non-positive.
    pub fn new(components: Vec<Box<dyn KeyDistribution>>, weights: &[f64]) -> Self {
        assert!(!components.is_empty(), "mixture needs components");
        assert_eq!(components.len(), weights.len(), "weight per component");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let total: f64 = weights.iter().sum();
        let mut cum = 0.0;
        let mut cum_weights: Vec<f64> = weights
            .iter()
            .map(|w| {
                cum += w / total;
                cum
            })
            .collect();
        *cum_weights.last_mut().expect("non-empty") = 1.0;
        let name = format!("mixture({} components)", components.len());
        MixtureKeys {
            components,
            cum_weights,
            name,
        }
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.components.len()
    }
}

impl KeyDistribution for MixtureKeys {
    fn sample(&self, rng: &mut dyn RngCore) -> Id {
        let u: f64 = rng.gen();
        let idx = match self
            .cum_weights
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.components.len() - 1),
        };
        self.components[idx].sample(rng)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Ready-made spiky distribution: `k` sharp Gaussian clusters at
/// deterministic random centres with Zipf(`s`) weights.
pub struct ClusteredKeys {
    inner: MixtureKeys,
    centers: Vec<f64>,
}

impl ClusteredKeys {
    /// `k` clusters of width `sigma`, Zipf exponent `s`, deterministic in
    /// `seed`.
    pub fn new(k: usize, sigma: f64, s: f64, seed: u64) -> Self {
        assert!(k > 0);
        // lint:allow(rng-discipline, cluster centers are rooted at an explicit caller-provided seed — a distribution entry point)
        let mut rng = SeedTree::new(seed).child(0xC1u64).rng();
        let centers: Vec<f64> = (0..k).map(|_| rng.gen::<f64>()).collect();
        let cdf = zipf_cdf_table(k, s);
        let mut weights = Vec::with_capacity(k);
        let mut prev = 0.0;
        for &c in &cdf {
            weights.push(c - prev);
            prev = c;
        }
        let components: Vec<Box<dyn KeyDistribution>> = centers
            .iter()
            .map(|&center| Box::new(NormalCluster { center, sigma }) as Box<dyn KeyDistribution>)
            .collect();
        ClusteredKeys {
            inner: MixtureKeys::new(components, &weights),
            centers,
        }
    }

    /// The cluster centres (unit interval), heaviest first.
    pub fn centers(&self) -> &[f64] {
        &self.centers
    }
}

impl KeyDistribution for ClusteredKeys {
    fn sample(&self, rng: &mut dyn RngCore) -> Id {
        self.inner.sample(rng)
    }

    fn name(&self) -> &str {
        "clustered"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mass_in_top_bins, sample_n, UniformKeys};
    use oscar_types::SeedTree;

    #[test]
    fn normal_cluster_concentrates_near_center() {
        let c = NormalCluster {
            center: 0.5,
            sigma: 0.01,
        };
        let keys = sample_n(&c, 2_000, &mut SeedTree::new(1).rng());
        let near = keys
            .iter()
            .filter(|k| (k.to_unit() - 0.5).abs() < 0.03)
            .count();
        assert!(near > 1_900, "within 3 sigma: {near}");
    }

    #[test]
    fn normal_cluster_wraps_at_ring_edge() {
        let c = NormalCluster {
            center: 0.001,
            sigma: 0.01,
        };
        let keys = sample_n(&c, 2_000, &mut SeedTree::new(2).rng());
        // Roughly half the mass wraps to the top of the unit interval.
        let wrapped = keys.iter().filter(|k| k.to_unit() > 0.9).count();
        assert!(wrapped > 400, "wrapped: {wrapped}");
    }

    #[test]
    fn mixture_respects_weights() {
        let comps: Vec<Box<dyn KeyDistribution>> = vec![
            Box::new(NormalCluster {
                center: 0.25,
                sigma: 1e-4,
            }),
            Box::new(NormalCluster {
                center: 0.75,
                sigma: 1e-4,
            }),
        ];
        let m = MixtureKeys::new(comps, &[0.9, 0.1]);
        let keys = sample_n(&m, 5_000, &mut SeedTree::new(3).rng());
        let near_heavy = keys
            .iter()
            .filter(|k| (k.to_unit() - 0.25).abs() < 0.01)
            .count();
        let frac = near_heavy as f64 / 5_000.0;
        assert!((frac - 0.9).abs() < 0.03, "heavy component fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "needs components")]
    fn empty_mixture_panics() {
        MixtureKeys::new(vec![], &[]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_weight_panics() {
        let comps: Vec<Box<dyn KeyDistribution>> = vec![Box::new(UniformKeys)];
        MixtureKeys::new(comps, &[0.0]);
    }

    #[test]
    fn clustered_is_much_spikier_than_uniform() {
        let d = ClusteredKeys::new(12, 5e-4, 1.0, 99);
        let keys = sample_n(&d, 20_000, &mut SeedTree::new(4).rng());
        let m = mass_in_top_bins(&keys, 1000, 0.02);
        assert!(
            m > 0.8,
            "top 2% of fine bins should hold most mass, got {m}"
        );
    }

    #[test]
    fn clustered_deterministic_centers() {
        let a = ClusteredKeys::new(5, 1e-3, 1.0, 7);
        let b = ClusteredKeys::new(5, 1e-3, 1.0, 7);
        assert_eq!(a.centers(), b.centers());
        assert_eq!(a.inner.arity(), 5);
    }
}
