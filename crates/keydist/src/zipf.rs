//! Zipf-distributed keys over equal-width bins of the ring.
//!
//! A coarse but controllable skew: the ring is divided into `bins`
//! equal-width bins; bin *ranks* get Zipf mass `∝ 1/rank^s`; within a bin
//! keys are uniform. A deterministic permutation scatters ranks across the
//! ring so the heavy bins are not all adjacent (matching the "spiky, not
//! monotone" shapes of real corpora).

use crate::KeyDistribution;
use oscar_types::{Id, SeedTree, RING_SIZE};
use rand::{Rng, RngCore};

/// Builds the cumulative mass table of a Zipf distribution over
/// `n` ranks with exponent `s` (`P(rank=r) ∝ 1/r^s`).
///
/// The returned vector is non-decreasing with final element exactly `1.0`.
pub fn zipf_cdf_table(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "zipf table needs at least one rank");
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for r in 1..=n {
        total += 1.0 / (r as f64).powf(s);
        cdf.push(total);
    }
    for v in cdf.iter_mut() {
        *v /= total;
    }
    // Guard the binary search against floating error.
    *cdf.last_mut().expect("non-empty") = 1.0;
    cdf
}

/// Zipf mass over equal-width ring bins.
#[derive(Clone, Debug)]
pub struct ZipfKeys {
    /// Cumulative probability per rank.
    cdf: Vec<f64>,
    /// `rank -> bin index` scatter permutation.
    rank_to_bin: Vec<u32>,
    exponent: f64,
    name: String,
}

impl ZipfKeys {
    /// Zipf keys with `bins` bins and exponent `s`, scattered by `seed`.
    pub fn new(bins: usize, s: f64, seed: u64) -> Self {
        assert!(bins > 0 && bins <= u32::MAX as usize);
        let cdf = zipf_cdf_table(bins, s);
        let mut rank_to_bin: Vec<u32> = (0..bins as u32).collect();
        // Fisher-Yates with a derived RNG: deterministic scatter.
        // lint:allow(rng-discipline, rank scatter is rooted at an explicit caller-provided seed — a distribution entry point)
        let mut rng = SeedTree::new(seed).child(0x5CA7).rng();
        for i in (1..bins).rev() {
            let j = rng.gen_range(0..=i);
            rank_to_bin.swap(i, j);
        }
        ZipfKeys {
            cdf,
            rank_to_bin,
            exponent: s,
            name: format!("zipf(s={s}, bins={bins})"),
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.cdf.len()
    }

    /// The Zipf exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability mass of the bin at `bin_index`.
    pub fn bin_mass(&self, bin_index: usize) -> f64 {
        // invert the scatter: find the rank mapped to this bin
        let rank = self
            .rank_to_bin
            .iter()
            .position(|&b| b as usize == bin_index)
            .expect("bin index in range");
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }
}

impl KeyDistribution for ZipfKeys {
    fn sample(&self, rng: &mut dyn RngCore) -> Id {
        let u: f64 = rng.gen();
        // First rank whose cumulative mass covers u.
        let rank = match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        };
        let bin = self.rank_to_bin[rank] as u128;
        let bin_width = RING_SIZE / self.cdf.len() as u128;
        let start = (bin * bin_width) as u64;
        let within: u64 = rng.gen_range(0..bin_width.max(1) as u64);
        Id::new(start.wrapping_add(within))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mass_in_top_bins, sample_n};
    use oscar_types::SeedTree;

    #[test]
    fn cdf_table_shape() {
        let cdf = zipf_cdf_table(5, 1.0);
        assert_eq!(cdf.len(), 5);
        assert_eq!(*cdf.last().unwrap(), 1.0);
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // rank-1 mass for s=1, n=5 is (1/1)/H_5 ≈ 0.4379
        assert!((cdf[0] - 0.4379).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_table_panics() {
        zipf_cdf_table(0, 1.0);
    }

    #[test]
    fn strong_zipf_is_heavily_skewed() {
        let d = ZipfKeys::new(256, 1.1, 42);
        let keys = sample_n(&d, 20_000, &mut SeedTree::new(1).rng());
        let m = mass_in_top_bins(&keys, 256, 0.05);
        assert!(m > 0.5, "top 5% of bins should hold >50% of mass, got {m}");
    }

    #[test]
    fn weak_zipf_is_mild() {
        let d = ZipfKeys::new(256, 0.2, 42);
        let keys = sample_n(&d, 20_000, &mut SeedTree::new(2).rng());
        let m = mass_in_top_bins(&keys, 256, 0.05);
        assert!(m < 0.25, "got {m}");
    }

    #[test]
    fn bin_mass_sums_to_one() {
        let d = ZipfKeys::new(32, 0.9, 7);
        let total: f64 = (0..32).map(|b| d.bin_mass(b)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed_and_scattered() {
        let d1 = ZipfKeys::new(64, 1.0, 10);
        let d2 = ZipfKeys::new(64, 1.0, 10);
        let d3 = ZipfKeys::new(64, 1.0, 11);
        assert_eq!(d1.rank_to_bin, d2.rank_to_bin);
        assert_ne!(
            d1.rank_to_bin, d3.rank_to_bin,
            "different seeds scatter differently"
        );
        // The heaviest bin should not always be bin 0 (scatter works).
        // The heaviest rank should rarely land on bin 0 for both seeds.
        assert!(d1.rank_to_bin[0] != 0 || d3.rank_to_bin[0] != 0);
    }

    #[test]
    fn samples_fall_in_heavy_bin_often() {
        let d = ZipfKeys::new(16, 1.2, 3);
        let heavy_bin = d.rank_to_bin[0] as usize;
        let keys = sample_n(&d, 5_000, &mut SeedTree::new(4).rng());
        let in_heavy = keys
            .iter()
            .filter(|k| (k.to_unit() * 16.0) as usize == heavy_bin)
            .count();
        // rank-1 mass for s=1.2,n=16 ≈ 0.30
        assert!(in_heavy > 1_000, "heavy bin hits: {in_heavy}");
    }
}
