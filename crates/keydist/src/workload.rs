//! Query workloads: how search targets are drawn.
//!
//! The paper measures "the average search cost induced by N random queries".
//! The natural reading — and our default — is that each query originates at
//! a random live peer and targets the identifier of another random live
//! peer (data lives where peers are, because the overlay is
//! order-preserving). Two more workloads support ablations:
//!
//! * `UniformKeys`: targets uniform over the ring regardless of density —
//!   stresses the deserts of a skewed key space;
//! * `ZipfPeers`: skewed *access* load (the paper's intro motivates
//!   disproportionate bandwidth use under skewed access patterns).
//!
//! The workload is pure: it decides *what* to target; resolving a peer rank
//! to an actual peer is the simulator's job.

use crate::zipf::zipf_cdf_table;
use oscar_types::Id;
use rand::{Rng, RngCore};

/// What a single query should target.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum QueryTarget {
    /// Target the identifier of the live peer with this rank (0-based,
    /// in ring order); the simulator resolves the rank.
    PeerRank(usize),
    /// Target this exact key.
    Key(Id),
}

/// A generator of query targets.
#[derive(Clone, Debug)]
pub enum QueryWorkload {
    /// Each query targets a live peer chosen uniformly at random.
    UniformPeers,
    /// Each query targets a uniformly random ring position.
    UniformKeys,
    /// Skewed access: peer ranks get Zipf(`exponent`) popularity, scattered
    /// deterministically so the hot peers are not ring-adjacent.
    ZipfPeers {
        /// Zipf exponent of the access skew.
        exponent: f64,
    },
    /// A *drifting* hot region: with probability `hot_fraction` the query
    /// targets a live rank near `center` (a ring position expressed as a
    /// fraction in `[0, 1)`), with the offset concentrated toward the
    /// centre; otherwise it falls back to a uniform live-peer target.
    /// Scenario drivers advance `center` between measurement windows to
    /// model a flash-crowd topic moving through the key space.
    Hotspot {
        /// Ring position of the hot spot's centre, as a fraction of the
        /// live ring (values outside `[0, 1)` wrap).
        center: f64,
        /// Half-width of the hot region, as a fraction of the live ring.
        width: f64,
        /// Probability that a query is hot (the rest are uniform).
        hot_fraction: f64,
    },
}

impl QueryWorkload {
    /// Draws a target given the current number of live peers.
    ///
    /// # Panics
    /// If `n_live == 0`.
    pub fn draw(&self, n_live: usize, rng: &mut dyn RngCore) -> QueryTarget {
        assert!(n_live > 0, "cannot query an empty network");
        match self {
            QueryWorkload::UniformPeers => QueryTarget::PeerRank(rng.gen_range(0..n_live)),
            QueryWorkload::UniformKeys => QueryTarget::Key(Id::new(rng.next_u64())),
            QueryWorkload::ZipfPeers { exponent } => {
                // Build-per-call would be wasteful for big N; cache-free
                // approximation: inverse-CDF on the continuous Zipf via
                // rejection-free power-law approximation is biased for
                // small N, so use the exact discrete table for n <= 4096
                // and the continuous approximation beyond.
                let rank = if n_live <= 4096 {
                    let cdf = zipf_cdf_table(n_live, *exponent);
                    let u: f64 = rng.gen();
                    match cdf.binary_search_by(|c| c.partial_cmp(&u).expect("no NaN")) {
                        Ok(i) => i,
                        Err(i) => i.min(n_live - 1),
                    }
                } else {
                    continuous_zipf_rank(n_live, *exponent, rng)
                };
                // Scatter so Zipf rank is decoupled from ring order.
                let scattered = scatter_rank(rank, n_live);
                QueryTarget::PeerRank(scattered)
            }
            QueryWorkload::Hotspot {
                center,
                width,
                hot_fraction,
            } => {
                let u: f64 = rng.gen();
                if u < *hot_fraction {
                    let span = ((n_live as f64 * width).ceil() as usize).clamp(1, n_live);
                    // Squared-uniform offset: mass concentrates toward the
                    // centre (a cheap Zipf-like falloff over the window).
                    let v: f64 = rng.gen();
                    let dist = ((v * v) * span as f64) as usize % span;
                    let c = (center.rem_euclid(1.0) * n_live as f64) as usize % n_live;
                    let r = if rng.gen::<bool>() {
                        (c + dist) % n_live
                    } else {
                        (c + n_live - (dist % n_live)) % n_live
                    };
                    QueryTarget::PeerRank(r)
                } else {
                    QueryTarget::PeerRank(rng.gen_range(0..n_live))
                }
            }
        }
    }

    /// Human-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            QueryWorkload::UniformPeers => "uniform-peers".into(),
            QueryWorkload::UniformKeys => "uniform-keys".into(),
            QueryWorkload::ZipfPeers { exponent } => format!("zipf-peers(s={exponent})"),
            QueryWorkload::Hotspot {
                center,
                width,
                hot_fraction,
            } => format!("hotspot(c={center:.3},w={width},f={hot_fraction})"),
        }
    }
}

/// Continuous approximation to a Zipf rank draw (for large `n`).
///
/// Uses inverse-transform on the continuous density `x^-s` over `[1, n+1)`.
fn continuous_zipf_rank(n: usize, s: f64, rng: &mut dyn RngCore) -> usize {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let nf = (n + 1) as f64;
    let rank_f = if (s - 1.0).abs() < 1e-9 {
        // integral of 1/x is ln; invert u = ln(x)/ln(n+1)
        nf.powf(u)
    } else {
        let a = 1.0 - s;
        // u = (x^a - 1) / ((n+1)^a - 1)
        ((u * (nf.powf(a) - 1.0)) + 1.0).powf(1.0 / a)
    };
    (rank_f.floor() as usize).clamp(1, n) - 1
}

/// Deterministic rank scatter: multiply by an odd constant mod n.
///
/// Bijective for odd multiplier when n is a power of two; for general n we
/// use a simple affine map and fix collisions by linear probing — cheap and
/// adequate (the goal is decorrelation, not cryptography).
fn scatter_rank(rank: usize, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    (rank.wrapping_mul(0x9E37_79B1) ^ (rank >> 3)) % n
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_types::SeedTree;

    #[test]
    fn uniform_peers_in_range() {
        let w = QueryWorkload::UniformPeers;
        let mut rng = SeedTree::new(1).rng();
        for _ in 0..1000 {
            match w.draw(37, &mut rng) {
                QueryTarget::PeerRank(r) => assert!(r < 37),
                _ => panic!("expected a peer rank"),
            }
        }
    }

    #[test]
    fn uniform_keys_yields_keys() {
        let w = QueryWorkload::UniformKeys;
        let mut rng = SeedTree::new(2).rng();
        assert!(matches!(w.draw(5, &mut rng), QueryTarget::Key(_)));
    }

    #[test]
    #[should_panic(expected = "empty network")]
    fn empty_network_panics() {
        let mut rng = SeedTree::new(3).rng();
        QueryWorkload::UniformPeers.draw(0, &mut rng);
    }

    #[test]
    fn zipf_peers_concentrates_access() {
        let w = QueryWorkload::ZipfPeers { exponent: 1.1 };
        let mut rng = SeedTree::new(4).rng();
        let n = 500;
        let mut counts = vec![0usize; n];
        for _ in 0..20_000 {
            if let QueryTarget::PeerRank(r) = w.draw(n, &mut rng) {
                counts[r] += 1;
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = counts.iter().take(10).sum();
        // Under Zipf(1.1) over 500 ranks the top-10 ranks carry ≳35% of mass.
        assert!(top10 > 5_000, "top-10 peers got only {top10}/20000 queries");
    }

    #[test]
    fn zipf_large_n_uses_continuous_path() {
        let w = QueryWorkload::ZipfPeers { exponent: 1.0 };
        let mut rng = SeedTree::new(5).rng();
        for _ in 0..1000 {
            match w.draw(10_000, &mut rng) {
                QueryTarget::PeerRank(r) => assert!(r < 10_000),
                _ => panic!("expected a peer rank"),
            }
        }
    }

    #[test]
    fn continuous_zipf_rank_skews_low_ranks() {
        let mut rng = SeedTree::new(6).rng();
        let hits_low = (0..10_000)
            .filter(|_| continuous_zipf_rank(100_000, 1.0, &mut rng) < 100)
            .count();
        // For s=1 over 1e5 ranks, P(rank<100) = ln(100)/ln(1e5) ≈ 0.40.
        assert!(hits_low > 3_000, "low ranks hit {hits_low}");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(QueryWorkload::UniformPeers.name(), "uniform-peers");
        assert_eq!(QueryWorkload::UniformKeys.name(), "uniform-keys");
        assert_eq!(
            QueryWorkload::ZipfPeers { exponent: 0.8 }.name(),
            "zipf-peers(s=0.8)"
        );
        assert_eq!(
            QueryWorkload::Hotspot {
                center: 0.25,
                width: 0.05,
                hot_fraction: 0.8,
            }
            .name(),
            "hotspot(c=0.250,w=0.05,f=0.8)"
        );
    }

    #[test]
    fn hotspot_concentrates_near_center() {
        let n = 1000;
        let w = QueryWorkload::Hotspot {
            center: 0.5,
            width: 0.05,
            hot_fraction: 0.9,
        };
        let mut rng = SeedTree::new(8).rng();
        let mut in_window = 0usize;
        let draws = 20_000;
        for _ in 0..draws {
            match w.draw(n, &mut rng) {
                QueryTarget::PeerRank(r) => {
                    assert!(r < n);
                    // The hot window is centre ± width·n = 500 ± 50.
                    if (450..=550).contains(&r) {
                        in_window += 1;
                    }
                }
                _ => panic!("expected a peer rank"),
            }
        }
        // ~90% of draws are hot and land inside the window; uniform draws
        // contribute ~10% of the remaining mass spread over the ring.
        assert!(
            in_window > draws / 2,
            "only {in_window}/{draws} draws hit the hot window"
        );
    }

    #[test]
    fn hotspot_center_wraps_and_drifts() {
        let n = 100;
        let mut rng = SeedTree::new(9).rng();
        // Centres outside [0, 1) wrap instead of panicking.
        for center in [-0.25, 1.75, 0.999] {
            let w = QueryWorkload::Hotspot {
                center,
                width: 0.1,
                hot_fraction: 1.0,
            };
            for _ in 0..200 {
                match w.draw(n, &mut rng) {
                    QueryTarget::PeerRank(r) => assert!(r < n),
                    _ => panic!("expected a peer rank"),
                }
            }
        }
        // Drifting the centre moves the hot mass: disjoint centres give
        // (mostly) disjoint hot ranks.
        let hits = |center: f64, rng: &mut rand::rngs::SmallRng| {
            let w = QueryWorkload::Hotspot {
                center,
                width: 0.02,
                hot_fraction: 1.0,
            };
            let mut counts = vec![0usize; n];
            for _ in 0..2000 {
                if let QueryTarget::PeerRank(r) = w.draw(n, rng) {
                    counts[r] += 1;
                }
            }
            counts
        };
        let a = hits(0.1, &mut rng);
        let b = hits(0.6, &mut rng);
        let overlap: usize = (0..n).map(|i| a[i].min(b[i])).sum();
        assert!(
            overlap < 200,
            "drifted hotspots overlap too much: {overlap}"
        );
    }
}
