//! Empirical CDFs and inverse-CDF key sampling.
//!
//! Two uses:
//!
//! * [`EmpiricalKeys`] — replay an observed key sample as a distribution
//!   (inverse-transform with interpolation), e.g. to re-seed an experiment
//!   from a captured corpus.
//! * [`EmpiricalCdf`] — the estimator Mercury builds from its uniform
//!   random-walk samples; `oscar-mercury` uses it to place long links. Its
//!   resolution is limited by the sample size — precisely the weakness the
//!   paper exploits.

use crate::KeyDistribution;
use oscar_types::Id;
use rand::{Rng, RngCore};

/// Empirical CDF over ring positions built from a sample.
///
/// The CDF treats the sample as sorted points `x_1 <= … <= x_n` on the
/// *linearised* ring (raw `u64` order) and interpolates linearly between
/// them. `quantile` is the inverse map.
#[derive(Clone, Debug)]
pub struct EmpiricalCdf {
    points: Vec<Id>,
}

impl EmpiricalCdf {
    /// Builds from any sample (sorted internally, duplicates allowed).
    ///
    /// # Panics
    /// If the sample is empty.
    pub fn new(mut sample: Vec<Id>) -> Self {
        assert!(!sample.is_empty(), "empirical CDF needs at least one point");
        sample.sort_unstable();
        EmpiricalCdf { points: sample }
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if built from a single point.
    pub fn is_empty(&self) -> bool {
        false // construction guarantees at least one point
    }

    /// Fraction of sample points `<= x` (linearised order).
    pub fn cdf(&self, x: Id) -> f64 {
        let n = self.points.len();
        let idx = self.points.partition_point(|&p| p <= x);
        idx as f64 / n as f64
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), with linear interpolation between
    /// adjacent sample points.
    pub fn quantile(&self, q: f64) -> Id {
        let q = q.clamp(0.0, 1.0);
        let n = self.points.len();
        if n == 1 {
            return self.points[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = pos - lo as f64;
        let a = self.points[lo];
        let b = self.points[hi];
        // interpolate along the short linear segment a..b
        let span = b.raw().wrapping_sub(a.raw());
        a.add((span as f64 * frac) as u64)
    }

    /// Rank-space walk: the key located `delta_ranks` **sample**-ranks
    /// clockwise of `from` under this estimate, with circular wrap. This
    /// is Mercury's "move r node-ranks along the estimated density"
    /// operation.
    ///
    /// Works directly in circular sample-index space (position of `from`
    /// among the sorted sample points plus the fractional advance,
    /// interpolating clockwise inside the hit gap) — composing `cdf` with
    /// `quantile` instead would be off by up to a whole sample gap, which
    /// destroys short-distance (harmonic) link placement.
    pub fn advance_by_ranks(&self, from: Id, delta_ranks: f64) -> Id {
        let n = self.points.len();
        if n == 1 {
            return self.points[0];
        }
        let k = self.points.partition_point(|&p| p < from);
        let pos = (k as f64 + delta_ranks).rem_euclid(n as f64);
        let lo = (pos.floor() as usize).min(n - 1);
        let hi = (lo + 1) % n;
        let frac = pos - pos.floor();
        let a = self.points[lo];
        let b = self.points[hi];
        // Clockwise gap a -> b; when hi wraps to 0 this is the arc through
        // the top of the ring, exactly the circular reading of the sample.
        let span = a.cw_dist(b);
        a.add((span as f64 * frac) as u64)
    }
}

/// Inverse-CDF sampling from an observed sample.
pub struct EmpiricalKeys {
    cdf: EmpiricalCdf,
}

impl EmpiricalKeys {
    /// Builds the sampler from a sample of keys.
    pub fn new(sample: Vec<Id>) -> Self {
        EmpiricalKeys {
            cdf: EmpiricalCdf::new(sample),
        }
    }

    /// Access to the underlying CDF.
    pub fn cdf(&self) -> &EmpiricalCdf {
        &self.cdf
    }
}

impl KeyDistribution for EmpiricalKeys {
    fn sample(&self, rng: &mut dyn RngCore) -> Id {
        self.cdf.quantile(rng.gen::<f64>())
    }

    fn name(&self) -> &str {
        "empirical"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sample_n, ClusteredKeys};
    use oscar_types::SeedTree;

    fn ids(xs: &[u64]) -> Vec<Id> {
        xs.iter().map(|&x| Id::new(x)).collect()
    }

    #[test]
    fn cdf_counts_fraction_leq() {
        let c = EmpiricalCdf::new(ids(&[10, 20, 30, 40]));
        assert_eq!(c.cdf(Id::new(5)), 0.0);
        assert_eq!(c.cdf(Id::new(10)), 0.25);
        assert_eq!(c.cdf(Id::new(25)), 0.5);
        assert_eq!(c.cdf(Id::new(100)), 1.0);
    }

    #[test]
    fn quantile_interpolates() {
        let c = EmpiricalCdf::new(ids(&[0, 100]));
        assert_eq!(c.quantile(0.0), Id::new(0));
        assert_eq!(c.quantile(0.5), Id::new(50));
        assert_eq!(c.quantile(1.0), Id::new(100));
    }

    #[test]
    fn quantile_single_point() {
        let c = EmpiricalCdf::new(ids(&[77]));
        assert_eq!(c.quantile(0.3), Id::new(77));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_sample_panics() {
        EmpiricalCdf::new(vec![]);
    }

    #[test]
    fn quantile_monotone() {
        let c = EmpiricalCdf::new(ids(&[5, 9, 20, 21, 500, 1000]));
        let mut prev = c.quantile(0.0);
        for i in 1..=100 {
            let q = c.quantile(i as f64 / 100.0);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn advance_by_ranks_moves_clockwise_in_rank_space() {
        let c = EmpiricalCdf::new(ids(&[0, 10, 20, 30, 40, 50, 60, 70, 80, 90]));
        let moved = c.advance_by_ranks(Id::new(10), 3.0);
        // 3 ranks from rank 2/10 → quantile 0.5 = interpolated midpoint
        assert!(
            moved >= Id::new(40) && moved <= Id::new(50),
            "moved to {moved:?}"
        );
    }

    #[test]
    fn empirical_keys_reproduce_source_shape() {
        // Sample a spiky distribution, rebuild it empirically, and check the
        // spike location survives the round-trip.
        let src = ClusteredKeys::new(3, 1e-3, 1.0, 11);
        let heavy = src.centers()[0];
        let sample = sample_n(&src, 4_000, &mut SeedTree::new(1).rng());
        let replay = EmpiricalKeys::new(sample);
        let keys = sample_n(&replay, 4_000, &mut SeedTree::new(2).rng());
        let near = keys
            .iter()
            .filter(|k| {
                let d = (k.to_unit() - heavy).abs();
                d.min(1.0 - d) < 0.02
            })
            .count();
        assert!(near > 1_000, "replayed spike too weak: {near}");
    }

    #[test]
    fn coarse_cdf_misses_narrow_spikes() {
        // The Mercury failure mode in miniature: a 16-point CDF cannot
        // resolve a 1e-4-wide spike; its quantiles smear mass broadly.
        let src = ClusteredKeys::new(8, 1e-4, 1.0, 13);
        let tiny_sample = sample_n(&src, 16, &mut SeedTree::new(3).rng());
        let coarse = EmpiricalCdf::new(tiny_sample);
        let big_sample = sample_n(&src, 8_192, &mut SeedTree::new(4).rng());
        let fine = EmpiricalCdf::new(big_sample);
        // Compare quantile curves: coarse deviates notably from fine.
        let mut max_dev = 0.0f64;
        for i in 1..100 {
            let q = i as f64 / 100.0;
            let a = coarse.quantile(q).to_unit();
            let b = fine.quantile(q).to_unit();
            let d = (a - b).abs();
            max_dev = max_dev.max(d.min(1.0 - d));
        }
        assert!(
            max_dev > 0.01,
            "coarse CDF suspiciously accurate: {max_dev}"
        );
    }
}
