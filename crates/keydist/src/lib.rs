//! # oscar-keydist — key distributions and query workloads
//!
//! Data-oriented overlays are exercised by *where the keys are*. This crate
//! provides the key distributions used by the paper's experiments and the
//! machinery to build arbitrary skewed distributions:
//!
//! * [`UniformKeys`] — the homogeneity baseline.
//! * [`ZipfKeys`] — Zipf mass over equal-width bins of the key space.
//! * [`ClusteredKeys`] / [`MixtureKeys`] — spiky mixtures of narrow clusters,
//!   the "totally arbitrary" distributions the paper argues Mercury cannot
//!   learn from uniform-resolution samples.
//! * [`GnutellaKeys`] — a synthetic Gnutella **filename** distribution: a
//!   Zipf-popular vocabulary composed into file names, order-preservingly
//!   encoded into the ring. This substitutes for the proprietary trace the
//!   authors used (see DESIGN.md §2); what matters is the shape — heavy
//!   lexical clustering with spikes and deserts.
//! * [`EmpiricalKeys`] — inverse-CDF sampling from an observed sample.
//! * [`QueryWorkload`] — how query targets are drawn (uniform over peers,
//!   uniform over the key space, or Zipf-skewed access load).
//!
//! All distributions implement [`KeyDistribution`], are deterministic under
//! a seeded RNG, and are object-safe so they can be boxed into experiment
//! configurations.

pub mod empirical;
pub mod gnutella;
pub mod mixture;
pub mod strings;
pub mod uniform;
pub mod workload;
pub mod zipf;

pub use empirical::{EmpiricalCdf, EmpiricalKeys};
pub use gnutella::{GnutellaConfig, GnutellaKeys};
pub use mixture::{ClusteredKeys, MixtureKeys, NormalCluster};
pub use strings::{encode_filename_key, encode_string_key};
pub use uniform::UniformKeys;
pub use workload::{QueryTarget, QueryWorkload};
pub use zipf::{zipf_cdf_table, ZipfKeys};

use oscar_types::Id;
use rand::RngCore;

/// A distribution over the identifier ring.
///
/// Implementations must be deterministic given the RNG stream; any internal
/// tables must be built at construction time so `sample` is cheap and
/// allocation-free where possible.
pub trait KeyDistribution: Send + Sync {
    /// Draws one key.
    fn sample(&self, rng: &mut dyn RngCore) -> Id;

    /// Short human-readable name for experiment reports.
    fn name(&self) -> &str;
}

impl<T: KeyDistribution + ?Sized> KeyDistribution for Box<T> {
    fn sample(&self, rng: &mut dyn RngCore) -> Id {
        (**self).sample(rng)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Draws `n` keys into a vector (test/bench convenience).
pub fn sample_n<D: KeyDistribution + ?Sized>(dist: &D, n: usize, rng: &mut dyn RngCore) -> Vec<Id> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dist.sample(rng));
    }
    out
}

/// Skewness diagnostic: fraction of `keys` falling into the most-populated
/// `top_fraction` of `bins` equal-width bins.
///
/// Uniform keys give ≈ `top_fraction`; the Gnutella model gives ≫ that.
/// Used by tests and reported in EXPERIMENTS.md.
pub fn mass_in_top_bins(keys: &[Id], bins: usize, top_fraction: f64) -> f64 {
    assert!(bins > 0 && !keys.is_empty());
    let mut counts = vec![0usize; bins];
    for k in keys {
        let b = ((k.to_unit()) * bins as f64) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let top = ((bins as f64) * top_fraction).ceil() as usize;
    let in_top: usize = counts.iter().take(top.max(1)).sum();
    in_top as f64 / keys.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_types::SeedTree;

    #[test]
    fn sample_n_length_and_determinism() {
        let d = UniformKeys;
        let a = sample_n(&d, 50, &mut SeedTree::new(1).rng());
        let b = sample_n(&d, 50, &mut SeedTree::new(1).rng());
        assert_eq!(a.len(), 50);
        assert_eq!(a, b);
    }

    #[test]
    fn mass_in_top_bins_uniform_close_to_fraction() {
        let d = UniformKeys;
        let keys = sample_n(&d, 20_000, &mut SeedTree::new(2).rng());
        let m = mass_in_top_bins(&keys, 100, 0.10);
        // The top 10% bins of a uniform sample hold a bit more than 10%
        // (they are the luckiest bins) but nowhere near a skewed pile-up.
        assert!(m > 0.10 && m < 0.20, "mass {m}");
    }

    #[test]
    fn boxed_distribution_is_usable() {
        let d: Box<dyn KeyDistribution> = Box::new(UniformKeys);
        let mut rng = SeedTree::new(3).rng();
        let _ = d.sample(&mut rng);
        assert_eq!(d.name(), "uniform");
    }
}
