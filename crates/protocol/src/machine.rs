//! The per-peer protocol state machine.
//!
//! A [`PeerMachine`] owns exactly what a real Oscar node would own — its
//! ring links (predecessor + successor list), its long links, a bounded
//! membership view — and advances only by handling one message or one
//! local command at a time, returning the messages it wants delivered.
//! It never touches a global snapshot; *who* delivers the messages (the
//! discrete-event simulator, the threaded actor runtime, or a unit
//! test's hand pump) is the driver's business.
//!
//! Determinism boundary: every stochastic protocol decision (walk
//! proposals, MH acceptances) draws from the RNG *carried inside the
//! token*, so outcomes are a pure function of the token seed and the
//! link tables it traverses — independent of scheduling. The only
//! handler that uses the driver-supplied RNG is gossip, which is
//! explicitly outside the deterministic core.

use crate::logic;
use crate::message::{
    Command, Message, OpKind, Outbound, ProtocolEvent, QueryReport, RepairTrigger,
};
use crate::token::{QueryToken, TokenRng, WalkToken};
use oscar_types::labels::protocol_machine::{LBL_LINK, LBL_PEER, LBL_RETRY, LBL_WALK};
use oscar_types::{mix64, Id, SeedTree};
use rand::RngCore;
use std::collections::VecDeque;

/// The canonical per-peer machine seed for a deployment rooted at
/// `root_seed`. Every driver must use this derivation so that the same
/// deployment seed yields the same walk-token streams in all worlds —
/// the cross-driver equivalence test depends on it.
pub fn peer_seed(root_seed: u64, id: Id) -> u64 {
    // lint:allow(rng-discipline, this is THE canonical entry point every driver shares to root per-peer streams)
    SeedTree::new(root_seed).child2(LBL_PEER, id.raw()).seed()
}

/// How a peer reacts to a neighbour it has declared dead.
///
/// The machine-side port of the churn engine's repair family: detection
/// is always timer-table-driven (probe retries drain, or a send bounces),
/// and the policy decides whether detection additionally triggers a
/// long-link rewire. Ring splicing (successor-list surgery, predecessor
/// hand-off) happens on every detection regardless of policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RepairPolicy {
    /// Detection only splices the ring; long links are left to sweeps
    /// (the driver periodically issuing [`Command::Rewire`]) or to rot.
    Off,
    /// Ring-probe detection of a dead neighbour triggers a full long-link
    /// rewire of the detector ([`PeerConfig::repair_walks`] fresh walks).
    /// `k` is the probe depth: each [`Command::ProbeRing`] pings the
    /// predecessor and the first `k` successors.
    ReactiveK {
        /// Successors probed per ring-probe round (>= 1 effective).
        k: usize,
    },
    /// A query forward bouncing off a corpse triggers the prober's own
    /// rewire — repair lands exactly where traffic finds the damage.
    /// Ring probes still run at depth 1 (ring maintenance only).
    OnProbe,
}

/// Tunables of one peer (uniform across a deployment in this PR).
#[derive(Clone, Debug, PartialEq)]
pub struct PeerConfig {
    /// Successor-list length (ring resilience).
    pub succ_len: usize,
    /// Long out-link budget (links this peer initiates).
    pub max_long_out: usize,
    /// Long in-link budget (links this peer accepts).
    pub max_long_in: usize,
    /// MH walk length per sample (burn-in of the sampling chain).
    pub walk_ttl: u32,
    /// Message budget per query.
    pub query_budget: u32,
    /// Peers contacted per gossip round.
    pub gossip_fanout: usize,
    /// View entries shipped per gossip message.
    pub gossip_sample: usize,
    /// Bound on the membership view.
    pub view_cap: usize,
    /// Base deadline for pending operations, in driver timer rounds.
    pub retry_timeout: u64,
    /// Retries per pending operation before giving up gracefully.
    pub max_retries: u32,
    /// Cap on the exponential retry backoff, in timer rounds.
    pub max_backoff: u64,
    /// Recently-seen message instance keys kept for duplicate
    /// suppression (a ring buffer per peer).
    pub dedup_window: usize,
    /// What a detected dead neighbour triggers beyond the ring splice.
    pub repair: RepairPolicy,
    /// Fresh MH walks launched by a policy-triggered rewire.
    pub repair_walks: u32,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            succ_len: 8,
            max_long_out: 5,
            max_long_in: 10,
            walk_ttl: 16,
            query_budget: 4096,
            gossip_fanout: 2,
            gossip_sample: 8,
            view_cap: 128,
            retry_timeout: 1,
            max_retries: 3,
            max_backoff: 8,
            dedup_window: 128,
            repair: RepairPolicy::Off,
            repair_walks: 3,
        }
    }
}

/// One walk batch in flight: walks in launch order, samples as they land.
#[derive(Clone, Debug, Default)]
struct WalkBatch {
    pending: Vec<(u64, Option<Id>)>,
}

/// One entry in the per-peer timer table: an operation awaiting its
/// completion message, with a virtual deadline and its own retry stream.
#[derive(Clone, Debug)]
struct Pending {
    kind: PendingKind,
    /// Sends made so far minus one (0 = only the original send).
    attempt: u32,
    /// Fires when the machine's clock reaches this round.
    deadline: u64,
    /// Backoff jitter and alternate-contact picks draw from here — a
    /// per-operation token stream, never the driver RNG.
    rng: TokenRng,
}

/// What a [`Pending`] entry is waiting for.
#[derive(Clone, Debug)]
enum PendingKind {
    /// `JoinRequest` sent to `contact`; cleared by `JoinWelcome`.
    Join { contact: Id },
    /// Launched walk; cleared by its `WalkDone`.
    Walk { walk_id: u64 },
    /// Issued query; cleared by `QueryDone` or local completion.
    Query { qid: u64, key: Id },
    /// `LinkRequest` to `target`; cleared by accept or reject.
    Link {
        target: Id,
        walk_id: u64,
        nonce_base: u64,
    },
    /// Ring-liveness `Ping` to `target`; cleared by its `Pong`. A drained
    /// retry budget declares the target dead (the failure detector).
    Probe { target: Id, nonce_base: u64 },
}

impl PendingKind {
    fn op(&self) -> OpKind {
        match self {
            PendingKind::Join { .. } => OpKind::Join,
            PendingKind::Walk { .. } => OpKind::Walk,
            PendingKind::Query { .. } => OpKind::Query,
            PendingKind::Link { .. } => OpKind::Link,
            PendingKind::Probe { .. } => OpKind::Probe,
        }
    }

    /// The (label, key) pair addressing this operation's retry stream.
    fn stream_key(&self) -> (u64, u64) {
        match self {
            PendingKind::Join { contact } => (1, contact.raw()),
            PendingKind::Walk { walk_id } => (2, *walk_id),
            PendingKind::Query { qid, .. } => (3, *qid),
            PendingKind::Link { walk_id, .. } => (4, *walk_id),
            // Keyed by the probe nonce, not the target: every probe epoch
            // gets a fresh retry stream for the same neighbour.
            PendingKind::Probe { nonce_base, .. } => (5, *nonce_base),
        }
    }
}

/// A retry resolved at tick time (split from the scan so borrow scopes
/// stay simple: the table is rebuilt first, then actions run).
enum RetryAction {
    Join { contact: Id, attempt: u32 },
    Walk { walk_id: u64, attempt: u32 },
    Query { qid: u64, key: Id, attempt: u32 },
    Link { target: Id, nonce: u64 },
    Probe { target: Id, nonce: u64 },
}

/// A pure, side-effect-free Oscar peer.
#[derive(Clone, Debug)]
pub struct PeerMachine {
    id: Id,
    seed: u64,
    cfg: PeerConfig,
    /// Ring predecessor; `id` itself when alone.
    pred: Id,
    /// Successor list, nearest first; empty when alone.
    succs: Vec<Id>,
    /// Long links this peer initiated (sorted).
    long_out: Vec<Id>,
    /// Long links this peer accepted (sorted).
    long_in: Vec<Id>,
    /// Bounded gossip membership view (sorted, excludes `id`).
    known: Vec<Id>,
    joined: bool,
    walk_counter: u64,
    batch: Option<WalkBatch>,
    events: Vec<ProtocolEvent>,
    /// Virtual clock in driver timer rounds; advanced only by
    /// [`Command::TimerTick`] — never by a wall clock.
    now: u64,
    /// Pending operations awaiting completion messages.
    timers: Vec<Pending>,
    /// Ring buffer of recent message instance keys (dedup window).
    seen: VecDeque<u64>,
    /// Recent ring splices `(joiner, old_pred)` this peer served, so a
    /// retried `JoinRequest` whose welcome was lost can be re-welcomed.
    recent_splices: Vec<(Id, Id)>,
    /// Neighbours this peer has declared dead (sorted, bounded). Gates
    /// predecessor hand-offs and successor merges; any message received
    /// from a suspect acquits it (false-positive recovery).
    suspects: Vec<Id>,
    /// Monotone counter of `ProbeRing` rounds — salts probe nonces so
    /// every round rolls fresh fault dice per edge.
    probe_epoch: u64,
    /// Join requests this peer has already forwarded, as `(joiner,
    /// attempt)` — a repeat means greedy routing found a cycle (see
    /// [`Self::handle_join_request`]) and the request is dropped.
    forwarded_joins: Vec<(Id, u32)>,
}

/// Splice-memory depth: how many recent joiners an owner can re-welcome.
const SPLICE_MEMORY: usize = 4;

/// Bound on the per-peer suspect list (declared-dead neighbours). Trimmed
/// clockwise-farthest, like the membership view.
const SUSPECT_CAP: usize = 32;

/// Bound on the forwarded-join memory. Joins in flight through one peer
/// at once are few; the memory only has to outlive one routing cycle.
const JOIN_FORWARD_MEMORY: usize = 64;

impl PeerMachine {
    /// A solo peer: its own predecessor, owning the whole ring.
    pub fn new(id: Id, seed: u64, cfg: PeerConfig) -> Self {
        PeerMachine {
            id,
            seed,
            cfg,
            pred: id,
            succs: Vec::new(),
            long_out: Vec::new(),
            long_in: Vec::new(),
            known: Vec::new(),
            joined: false,
            walk_counter: 0,
            batch: None,
            events: Vec::new(),
            now: 0,
            timers: Vec::new(),
            seen: VecDeque::new(),
            recent_splices: Vec::new(),
            suspects: Vec::new(),
            probe_epoch: 0,
            forwarded_joins: Vec::new(),
        }
    }

    // --- read-only state access (drivers, tests, fingerprints) -----------

    /// This peer's ring position.
    pub fn id(&self) -> Id {
        self.id
    }

    /// Current ring predecessor (`id()` when alone).
    pub fn pred(&self) -> Id {
        self.pred
    }

    /// Successor list, nearest first.
    pub fn succs(&self) -> &[Id] {
        &self.succs
    }

    /// Long out-links, sorted.
    pub fn long_out(&self) -> &[Id] {
        &self.long_out
    }

    /// Long in-links, sorted.
    pub fn long_in(&self) -> &[Id] {
        &self.long_in
    }

    /// Membership view, sorted.
    pub fn known(&self) -> &[Id] {
        &self.known
    }

    /// True once the peer has spliced into the ring (or was bootstrapped).
    pub fn joined(&self) -> bool {
        self.joined
    }

    /// Neighbours this peer has declared dead (sorted).
    pub fn suspects(&self) -> &[Id] {
        &self.suspects
    }

    /// Canonical neighbour table: predecessor, successors, and long links,
    /// sorted and de-duplicated. Identical across drivers by construction,
    /// which is what makes token walks scheduling-independent.
    pub fn neighbors(&self) -> Vec<Id> {
        let mut t: Vec<Id> =
            Vec::with_capacity(1 + self.succs.len() + self.long_out.len() + self.long_in.len());
        if self.pred != self.id {
            t.push(self.pred);
        }
        t.extend_from_slice(&self.succs);
        t.extend_from_slice(&self.long_out);
        t.extend_from_slice(&self.long_in);
        t.sort_unstable();
        t.dedup();
        t.retain(|&x| x != self.id);
        t
    }

    /// Walk degree (size of the canonical neighbour table).
    pub fn degree(&self) -> usize {
        self.neighbors().len()
    }

    /// Full link-table fingerprint for equivalence checks:
    /// `(pred, succs, long_out, long_in)`.
    pub fn fingerprint(&self) -> (Id, Vec<Id>, Vec<Id>, Vec<Id>) {
        (
            self.pred,
            self.succs.clone(),
            self.long_out.clone(),
            self.long_in.clone(),
        )
    }

    /// Drains the milestones observed since the last drain.
    pub fn drain_events(&mut self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut self.events)
    }

    /// The earliest pending deadline, if any operation is still waiting.
    /// Drivers use the minimum across all machines to decide the next
    /// timer round; `None` everywhere means the deployment has settled.
    pub fn next_deadline(&self) -> Option<u64> {
        self.timers.iter().map(|p| p.deadline).min()
    }

    // --- command handling --------------------------------------------------

    /// Handles a local driver command.
    pub fn on_command(&mut self, cmd: Command, rng: &mut dyn RngCore) -> Vec<Outbound> {
        match cmd {
            Command::Bootstrap { pred, succs, known } => {
                self.pred = pred;
                self.succs = succs;
                self.succs.truncate(self.cfg.succ_len);
                for k in known {
                    self.note_peer(k);
                }
                self.joined = true;
                Vec::new()
            }
            Command::Join { contact } => {
                if self.joined {
                    return Vec::new();
                }
                self.note_peer(contact);
                if !self
                    .timers
                    .iter()
                    .any(|p| matches!(p.kind, PendingKind::Join { .. }))
                {
                    self.arm_timer(PendingKind::Join { contact });
                }
                vec![Outbound::new(
                    contact,
                    Message::JoinRequest {
                        joiner: self.id,
                        attempt: 0,
                    },
                )]
            }
            Command::BuildLinks { walks } => self.launch_walks(walks),
            Command::Rewire { walks } => {
                let mut outs: Vec<Outbound> = self
                    .long_out
                    .drain(..)
                    .map(|t| Outbound::new(t, Message::Unlink))
                    .collect();
                outs.extend(self.launch_walks(walks));
                outs
            }
            Command::StartQuery { qid, key } => {
                if !self
                    .timers
                    .iter()
                    .any(|p| matches!(p.kind, PendingKind::Query { qid: q, .. } if q == qid))
                {
                    self.arm_timer(PendingKind::Query { qid, key });
                }
                let token = QueryToken::new(qid, self.id, key, self.cfg.query_budget);
                self.process_query(token)
            }
            Command::GossipTick => self.gossip_round(rng),
            Command::ProbeRing => self.probe_ring(),
            Command::Depart => self.depart(),
            Command::TimerTick { now } => {
                if now > self.now {
                    self.now = now;
                }
                self.on_timer_tick()
            }
        }
    }

    /// Handles one delivered message from `from`.
    pub fn on_message(&mut self, from: Id, msg: Message, rng: &mut dyn RngCore) -> Vec<Outbound> {
        // Duplicate suppression for token steps: a duplicated delivery of
        // one send must not double-advance a walk or query. Keyed by
        // message content (see `Message::instance_key`), so consecutive
        // *legitimate* steps of the same token never collide.
        if let Some(key) = msg.dedup_key() {
            if self.seen.contains(&key) {
                return Vec::new();
            }
            self.seen.push_back(key);
            if self.seen.len() > self.cfg.dedup_window.max(1) {
                self.seen.pop_front();
            }
        }
        // Hearing from a suspect acquits it: the declaration was a false
        // positive (lossy edge, slow probe) and the peer is demonstrably up.
        if let Ok(pos) = self.suspects.binary_search(&from) {
            self.suspects.remove(pos);
        }
        match msg {
            Message::JoinRequest { joiner, attempt } => self.handle_join_request(joiner, attempt),
            Message::JoinWelcome {
                pred,
                succs,
                attempt: _,
            } => {
                if self.joined {
                    // A duplicated or retried welcome; the first one won.
                    return Vec::new();
                }
                self.clear_join();
                self.pred = pred;
                self.succs = succs;
                self.succs.truncate(self.cfg.succ_len);
                self.joined = true;
                let snapshot: Vec<Id> = self.succs.clone();
                for s in snapshot {
                    self.note_peer(s);
                }
                self.note_peer(pred);
                self.events
                    .push(ProtocolEvent::JoinCompleted { peer: self.id });
                if self.pred != self.id {
                    vec![Outbound::new(
                        self.pred,
                        Message::NewSuccessor { succ: self.id },
                    )]
                } else {
                    Vec::new()
                }
            }
            Message::NewSuccessor { succ } => {
                self.note_peer(succ);
                let closer = self
                    .succs
                    .first()
                    .map(|&s0| succ != s0 && self.id.cw_dist(succ) < self.id.cw_dist(s0))
                    .unwrap_or(true);
                if closer && succ != self.id {
                    self.succs.insert(0, succ);
                    self.succs.truncate(self.cfg.succ_len);
                }
                Vec::new()
            }
            Message::WalkProbe(mut token) => {
                token.remaining = token.remaining.saturating_sub(1);
                let my_deg = self.degree();
                let accept = logic::mh_accept(token.holder_deg, my_deg, || token.rng.unit_f64());
                if accept && my_deg > 0 {
                    if token.remaining == 0 {
                        vec![Outbound::new(
                            token.origin,
                            Message::WalkDone {
                                walk_id: token.walk_id,
                                sample: self.id,
                                attempt: token.attempt,
                            },
                        )]
                    } else {
                        vec![self.step_walk(token)]
                    }
                } else {
                    vec![Outbound::new(from, Message::WalkReject(token))]
                }
            }
            Message::WalkReject(token) => {
                if token.remaining == 0 {
                    vec![Outbound::new(
                        token.origin,
                        Message::WalkDone {
                            walk_id: token.walk_id,
                            sample: self.id,
                            attempt: token.attempt,
                        },
                    )]
                } else {
                    vec![self.step_walk(token)]
                }
            }
            Message::WalkDone {
                walk_id,
                sample,
                attempt: _,
            } => {
                self.note_peer(sample);
                self.record_walk_done(walk_id, sample)
            }
            Message::LinkRequest { nonce } => {
                if from != self.id {
                    match self.long_in.binary_search(&from) {
                        // Already granted: a retry whose accept was lost.
                        // Re-affirm instead of rejecting, or the requester
                        // would drop a link this side keeps.
                        Ok(_) => return vec![Outbound::new(from, Message::LinkAccept { nonce })],
                        Err(pos) if self.long_in.len() < self.cfg.max_long_in => {
                            self.long_in.insert(pos, from);
                            self.note_peer(from);
                            return vec![Outbound::new(from, Message::LinkAccept { nonce })];
                        }
                        Err(_) => {}
                    }
                }
                vec![Outbound::new(from, Message::LinkReject { nonce })]
            }
            Message::LinkAccept { nonce: _ } => {
                self.clear_link(from);
                self.note_peer(from);
                if self.long_out.binary_search(&from).is_ok() {
                    // Duplicated accept for a link already installed.
                    return Vec::new();
                }
                if self.long_out.len() < self.cfg.max_long_out {
                    if let Err(pos) = self.long_out.binary_search(&from) {
                        self.long_out.insert(pos, from);
                        return Vec::new();
                    }
                }
                // No room: give the accepted slot back.
                vec![Outbound::new(from, Message::Unlink)]
            }
            Message::LinkReject { nonce: _ } => {
                self.clear_link(from);
                Vec::new()
            }
            Message::Unlink => {
                self.long_in.retain(|&x| x != from);
                self.long_out.retain(|&x| x != from);
                Vec::new()
            }
            Message::Query(token) => self.process_query(token),
            Message::QueryDone(report) => {
                // Gated on the pending entry: a late or duplicated report
                // for an already-completed query must not double-count.
                if self.clear_query(report.qid) {
                    self.events.push(ProtocolEvent::QueryCompleted(report));
                }
                Vec::new()
            }
            Message::GossipPush { view } => {
                for p in view {
                    self.note_peer(p);
                }
                self.note_peer(from);
                vec![Outbound::new(
                    from,
                    Message::GossipPull {
                        view: self.view_sample(rng),
                    },
                )]
            }
            Message::GossipPull { view } => {
                for p in view {
                    self.note_peer(p);
                }
                self.note_peer(from);
                Vec::new()
            }
            Message::Ping { nonce } => {
                self.note_peer(from);
                // Chord-notify ride-along: the peer whose successor head is
                // me pings me every probe round, so a lost Leaving or
                // PredUpdate still converges at probe cadence.
                self.maybe_adopt_pred(from);
                vec![Outbound::new(
                    from,
                    Message::Pong {
                        nonce,
                        succs: self.welcome_succs(),
                    },
                )]
            }
            Message::Pong { nonce: _, succs } => {
                self.clear_probe(from);
                self.note_peer(from);
                // Stabilisation ride-along: merge the responder's successor
                // list into ours (suspects and self excluded), keeping the
                // clockwise-nearest `succ_len`.
                self.merge_succs(&succs);
                Vec::new()
            }
            Message::Leaving { pred, succs } => {
                // Graceful splice: purge the leaver, adopt its hand-over.
                self.long_out.retain(|&x| x != from);
                self.long_in.retain(|&x| x != from);
                self.known.retain(|&x| x != from);
                if self.pred == from {
                    // The leaver's predecessor is now ours (ourselves when
                    // the leaver knew no one else — a two-peer ring).
                    self.pred = if pred == from { self.id } else { pred };
                }
                let was_head = self.succs.first() == Some(&from);
                self.succs.retain(|&x| x != from);
                let handover: Vec<Id> = succs.into_iter().filter(|&s| s != from).collect();
                self.merge_succs(&handover);
                if was_head {
                    // The leaver sat between me and my new successor head:
                    // claim the predecessor slot it vacated (the receiver's
                    // guard rejects the claim if someone closer exists).
                    if let Some(&ns) = self.succs.first() {
                        return vec![Outbound::new(ns, Message::PredUpdate)];
                    }
                }
                Vec::new()
            }
            Message::PredUpdate => {
                self.maybe_adopt_pred(from);
                Vec::new()
            }
        }
    }

    /// Driver callback: a message this peer sent could not be delivered
    /// (dead or unknown destination). This is the uniform failure model
    /// across drivers — the DES and the actor runtime report it the same
    /// way, so recovery behaviour stays identical.
    pub fn on_delivery_failure(&mut self, to: Id, msg: Message) -> Vec<Outbound> {
        self.known.retain(|&x| x != to);
        match msg {
            Message::Query(mut token) => {
                // The probe was charged when sent; undo the advance, record
                // the corpse, and try the next candidate from here.
                token.hops = token.hops.saturating_sub(1);
                token.stack.pop();
                token.mark_dead(to);
                token.wasted += 1;
                // On-probe repair: the bounce *is* the failure detector —
                // the prober rewires itself right where traffic found the
                // damage. Other policies leave detection to ring probes.
                let mut outs = if self.cfg.repair == RepairPolicy::OnProbe {
                    self.declare_dead(to, RepairTrigger::QueryDetect)
                } else {
                    Vec::new()
                };
                outs.extend(self.process_query(token));
                outs
            }
            Message::Ping { .. } => {
                // A bounced probe is an instant verdict: the driver itself
                // reports the destination dead — no need to drain retries.
                self.clear_probe(to);
                self.declare_dead(to, RepairTrigger::RingDetect)
            }
            Message::WalkProbe(mut token) => {
                // A probe to a corpse is a rejected move: step consumed,
                // walk stays here.
                token.remaining = token.remaining.saturating_sub(1);
                if token.remaining == 0 {
                    vec![Outbound::new(
                        token.origin,
                        Message::WalkDone {
                            walk_id: token.walk_id,
                            sample: self.id,
                            attempt: token.attempt,
                        },
                    )]
                } else {
                    vec![self.step_walk(token)]
                }
            }
            Message::LinkAccept { .. } => {
                // The requester died after we granted the slot: reclaim it.
                self.long_in.retain(|&x| x != to);
                Vec::new()
            }
            // Lost walks, joins, reports, gossip: nothing to recover.
            _ => Vec::new(),
        }
    }

    // --- join routing ------------------------------------------------------

    fn handle_join_request(&mut self, joiner: Id, attempt: u32) -> Vec<Outbound> {
        if joiner == self.id {
            // A retried request routed all the way back to its issuer
            // (possible once the splice is installed); self-splicing
            // would corrupt the ring.
            return Vec::new();
        }
        if logic::owns(self.pred, self.id, joiner) {
            // Splice: the joiner takes over the head of my arc. Serving a
            // splice also makes a solo bootstrap peer part of the overlay.
            let old_pred = self.pred;
            self.pred = joiner;
            self.joined = true;
            self.note_peer(joiner);
            self.recent_splices.push((joiner, old_pred));
            if self.recent_splices.len() > SPLICE_MEMORY {
                self.recent_splices.remove(0);
            }
            return vec![Outbound::new(
                joiner,
                Message::JoinWelcome {
                    pred: old_pred,
                    succs: self.welcome_succs(),
                    attempt,
                },
            )];
        }
        if joiner == self.pred {
            // Already spliced — a duplicated or retried request whose
            // original welcome may have been lost. Reconstruct it from
            // the splice memory; a joiner that did receive the original
            // ignores the repeat (welcomes are idempotent).
            if let Some(&(_, old_pred)) = self
                .recent_splices
                .iter()
                .rev()
                .find(|&&(j, _)| j == joiner)
            {
                return vec![Outbound::new(
                    joiner,
                    Message::JoinWelcome {
                        pred: old_pred,
                        succs: self.welcome_succs(),
                        attempt,
                    },
                )];
            }
            return Vec::new();
        }
        // Routing-loop suppression. While the ring converges after a
        // nearby splice, the owner-delivery hop (a successor-list jump)
        // can land at a peer whose pred has already moved past the
        // joiner; that peer re-greedies the request, which circles the
        // whole ring back to the same jump — forever, since joins carry
        // no hop budget. Seeing the same `(joiner, attempt)` twice is
        // exactly that cycle: drop the request and let the joiner's
        // retry timer redrive the join against the converged ring.
        if self.forwarded_joins.contains(&(joiner, attempt)) {
            return Vec::new();
        }
        match self.best_step_toward(joiner, |_| false) {
            Some(next) => {
                self.forwarded_joins.push((joiner, attempt));
                if self.forwarded_joins.len() > JOIN_FORWARD_MEMORY {
                    self.forwarded_joins.remove(0);
                }
                vec![Outbound::new(
                    next,
                    Message::JoinRequest { joiner, attempt },
                )]
            }
            // Unreachable on a consistent ring; drop rather than loop.
            None => Vec::new(),
        }
    }

    /// The successor list shipped in a welcome: this peer, then its own
    /// successors, truncated.
    fn welcome_succs(&self) -> Vec<Id> {
        let mut succs = Vec::with_capacity(self.cfg.succ_len);
        succs.push(self.id);
        succs.extend_from_slice(&self.succs);
        succs.truncate(self.cfg.succ_len);
        succs
    }

    // --- MH sampling walks ---------------------------------------------------

    fn launch_walks(&mut self, walks: u32) -> Vec<Outbound> {
        if walks == 0 || self.degree() == 0 {
            return Vec::new();
        }
        let mut outs = Vec::with_capacity(walks as usize);
        let batch = self.batch.get_or_insert_with(WalkBatch::default);
        let mut launched = Vec::with_capacity(walks as usize);
        for _ in 0..walks {
            let walk_id = self.walk_counter;
            self.walk_counter += 1;
            batch.pending.push((walk_id, None));
            launched.push(walk_id);
        }
        for walk_id in launched {
            self.arm_timer(PendingKind::Walk { walk_id });
            let token = self.walk_token(walk_id, 0);
            outs.push(self.step_walk(token));
        }
        outs
    }

    /// The token for launch `attempt` of `walk_id`. Attempt 0 uses the
    /// original per-walk derivation (artifact-critical: committed seeded
    /// baselines realise exactly these streams); retries derive a fresh
    /// child stream so the re-launched walk takes a different path.
    fn walk_token(&self, walk_id: u64, attempt: u32) -> WalkToken {
        // lint:allow(rng-discipline, walk tokens root at the machine's own deterministic seed keyed by walk_id)
        let node = SeedTree::new(self.seed).child2(LBL_WALK, walk_id);
        let seed = if attempt == 0 {
            node.seed()
        } else {
            node.child(attempt as u64).seed()
        };
        WalkToken {
            walk_id,
            origin: self.id,
            remaining: self.cfg.walk_ttl.max(1),
            rng: TokenRng::new(seed),
            holder_deg: 0,
            attempt,
        }
    }

    /// Proposes the next walk move from this holder.
    fn step_walk(&self, mut token: WalkToken) -> Outbound {
        let table = self.neighbors();
        if table.is_empty() {
            return Outbound::new(
                token.origin,
                Message::WalkDone {
                    walk_id: token.walk_id,
                    sample: self.id,
                    attempt: token.attempt,
                },
            );
        }
        let k = token.rng.index(table.len());
        token.holder_deg = table.len();
        Outbound::new(table[k], Message::WalkProbe(token))
    }

    fn record_walk_done(&mut self, walk_id: u64, sample: Id) -> Vec<Outbound> {
        let Some(batch) = self.batch.as_mut() else {
            return Vec::new();
        };
        match batch.pending.iter_mut().find(|(w, _)| *w == walk_id) {
            // First sample for this walk: record it.
            Some(slot) if slot.1.is_none() => slot.1 = Some(sample),
            // A late WalkDone from a retried walk whose earlier launch
            // also finished, or an unknown walk id: the batch may already
            // be settled (or settling) — ignore.
            _ => return Vec::new(),
        }
        self.clear_walk(walk_id);
        self.try_settle_batch()
    }

    /// Settles the walk batch once every pending walk has landed (or been
    /// given up): issues link requests in launch order — a deterministic
    /// sequence, whatever order the WalkDone messages arrived in.
    fn try_settle_batch(&mut self) -> Vec<Outbound> {
        match self.batch.as_ref() {
            None => return Vec::new(),
            Some(b) if b.pending.iter().any(|(_, s)| s.is_none()) => return Vec::new(),
            Some(_) => {}
        }
        let Some(batch) = self.batch.take() else {
            // Checked present above; a miss here means the machine's own
            // state went inconsistent — drop the batch, keep the thread.
            self.events.push(ProtocolEvent::Fault {
                peer: self.id,
                context: "walk batch vanished before settling",
            });
            return Vec::new();
        };
        let mut targets: Vec<(u64, Id)> = Vec::new();
        let mut chosen: Vec<Id> = Vec::new();
        for (walk_id, sample) in &batch.pending {
            // Every slot landed (checked above); skip rather than unwrap so
            // an impossible None cannot poison the machine.
            let Some(s) = *sample else { continue };
            if logic::admits_link(self.id, s, &chosen, &self.long_out) {
                chosen.push(s);
                targets.push((*walk_id, s));
            }
        }
        let room = self.cfg.max_long_out.saturating_sub(self.long_out.len());
        targets.truncate(room);
        self.events.push(ProtocolEvent::WalksSettled {
            peer: self.id,
            samples: targets.len(),
        });
        let mut outs = Vec::with_capacity(targets.len());
        for (walk_id, t) in targets {
            // lint:allow(rng-discipline, link nonces root at the machine's own deterministic seed keyed by walk_id)
            let nonce = SeedTree::new(self.seed).child2(LBL_LINK, walk_id).seed();
            self.arm_timer(PendingKind::Link {
                target: t,
                walk_id,
                nonce_base: nonce,
            });
            outs.push(Outbound::new(t, Message::LinkRequest { nonce }));
        }
        outs
    }

    // --- greedy query routing -------------------------------------------------

    /// Advances a query token held at this peer: deliver, forward, or
    /// backtrack. Shares its progress ranking ([`logic::progress_toward`])
    /// and ownership test ([`logic::owns`]) with the simulator's router.
    fn process_query(&mut self, mut token: QueryToken) -> Vec<Outbound> {
        if logic::owns(self.pred, self.id, token.key) {
            return self.complete_query(token, true, Some(self.id));
        }
        let excluded = |t: &QueryToken, c: Id| t.is_excluded(c);
        if let Some(next) = self.best_step_toward(token.key, |c| excluded(&token, c)) {
            if token.budget == 0 {
                return self.complete_query(token, false, None);
            }
            token.budget -= 1;
            token.hops += 1;
            token.stack.push(self.id);
            return vec![Outbound::new(next, Message::Query(token))];
        }
        // Dead end: retreat along the forward path.
        token.mark_exhausted(self.id);
        token.backtracks += 1;
        token.wasted += 1;
        while let Some(prev) = token.stack.pop() {
            if token.is_excluded(prev) {
                continue;
            }
            if token.budget == 0 {
                return self.complete_query(token, false, None);
            }
            token.budget -= 1;
            return vec![Outbound::new(prev, Message::Query(token))];
        }
        self.complete_query(token, false, None)
    }

    /// The best next hop toward `key` from this peer's local tables: the
    /// neighbour with the smallest remaining clockwise distance, or the
    /// first successor whose arc covers the key (the final overshoot hop
    /// to the owner), skipping `exclude`d peers.
    fn best_step_toward(&self, key: Id, exclude: impl Fn(Id) -> bool) -> Option<Id> {
        let span = self.id.cw_dist(key);
        let mut best: Option<(u64, Id)> = None;
        for c in self.neighbors() {
            if exclude(c) {
                continue;
            }
            if let Some(p) = logic::progress_toward(c, key, span) {
                if best.map(|(bp, _)| p < bp).unwrap_or(true) {
                    best = Some((p, c));
                }
            }
        }
        if let Some((_, c)) = best {
            return Some(c);
        }
        // No neighbour lies on (self, key]: the owner sits just past the
        // key — the nearest successor whose arc covers it.
        self.succs
            .iter()
            .copied()
            .find(|&s| !exclude(s) && logic::owns(self.id, s, key))
    }

    fn complete_query(
        &mut self,
        token: QueryToken,
        success: bool,
        dest: Option<Id>,
    ) -> Vec<Outbound> {
        let report = QueryReport {
            qid: token.qid,
            origin: token.origin,
            key: token.key,
            success,
            hops: token.hops,
            wasted: token.wasted,
            backtracks: token.backtracks,
            attempt: token.attempt,
            dest,
        };
        if token.origin == self.id {
            // Gated on the pending entry, exactly like a remote QueryDone:
            // a duplicated token completing locally must not double-count.
            if self.clear_query(report.qid) {
                self.events.push(ProtocolEvent::QueryCompleted(report));
            }
            Vec::new()
        } else {
            vec![Outbound::new(token.origin, Message::QueryDone(report))]
        }
    }

    // --- failure detection: timers, retries, give-up ------------------------

    /// Arms a timer for a freshly issued operation. The entry's retry
    /// stream roots at the machine's own seed keyed by the operation, so
    /// backoff jitter and alternate-contact picks are deterministic and
    /// driver-independent (never the driver RNG).
    fn arm_timer(&mut self, kind: PendingKind) {
        let (tag, key) = kind.stream_key();
        // lint:allow(rng-discipline, retry streams root at the machine's own deterministic seed keyed by the operation)
        let seed = SeedTree::new(self.seed)
            .child(LBL_RETRY)
            .child2(tag, key)
            .seed();
        self.timers.push(Pending {
            kind,
            attempt: 0,
            deadline: self.now + self.cfg.retry_timeout.max(1),
            rng: TokenRng::new(seed),
        });
    }

    fn clear_join(&mut self) {
        self.timers
            .retain(|p| !matches!(p.kind, PendingKind::Join { .. }));
    }

    fn clear_walk(&mut self, walk_id: u64) {
        self.timers
            .retain(|p| !matches!(p.kind, PendingKind::Walk { walk_id: w } if w == walk_id));
    }

    /// Removes the pending entry for `qid`; true iff one existed (the
    /// completion gate — late and duplicated reports find nothing).
    fn clear_query(&mut self, qid: u64) -> bool {
        let before = self.timers.len();
        self.timers
            .retain(|p| !matches!(p.kind, PendingKind::Query { qid: q, .. } if q == qid));
        self.timers.len() != before
    }

    fn clear_link(&mut self, target: Id) {
        self.timers
            .retain(|p| !matches!(p.kind, PendingKind::Link { target: t, .. } if t == target));
    }

    /// Fires expired deadlines at the machine's current virtual time:
    /// each due entry emits `TimedOut`, then either retries (capped
    /// exponential backoff with jitter from the entry's own stream) or —
    /// once `max_retries` is exhausted — degrades gracefully via
    /// [`Self::give_up`]. The table is rebuilt first and actions run
    /// after, because an action (e.g. a query retry completing locally)
    /// may itself clear entries.
    fn on_timer_tick(&mut self) -> Vec<Outbound> {
        if self.timers.is_empty() {
            return Vec::new();
        }
        let base = self.cfg.retry_timeout.max(1);
        let cap = self.cfg.max_backoff.max(base);
        let mut keep: Vec<Pending> = Vec::with_capacity(self.timers.len());
        let mut actions: Vec<RetryAction> = Vec::new();
        let mut gaveups: Vec<(PendingKind, u32)> = Vec::new();
        for mut p in std::mem::take(&mut self.timers) {
            if p.deadline > self.now {
                keep.push(p);
                continue;
            }
            self.events.push(ProtocolEvent::TimedOut {
                peer: self.id,
                op: p.kind.op(),
                attempt: p.attempt,
            });
            if p.attempt >= self.cfg.max_retries {
                gaveups.push((p.kind, p.attempt + 1));
                continue;
            }
            p.attempt += 1;
            let exp = base
                .saturating_mul(1u64 << (p.attempt - 1).min(16))
                .min(cap);
            let jitter = p.rng.index(exp.max(1) as usize) as u64;
            p.deadline = self.now + exp + jitter;
            let action = match &mut p.kind {
                PendingKind::Join { contact } => {
                    // Retry via an alternate contact when the view offers
                    // one (the original may be the crashed peer).
                    if !self.known.is_empty() {
                        *contact = self.known[p.rng.index(self.known.len())];
                    }
                    RetryAction::Join {
                        contact: *contact,
                        attempt: p.attempt,
                    }
                }
                PendingKind::Walk { walk_id } => RetryAction::Walk {
                    walk_id: *walk_id,
                    attempt: p.attempt,
                },
                PendingKind::Query { qid, key } => RetryAction::Query {
                    qid: *qid,
                    key: *key,
                    attempt: p.attempt,
                },
                PendingKind::Link {
                    target, nonce_base, ..
                } => RetryAction::Link {
                    target: *target,
                    // Salted nonce: the retry is content-distinct, so it
                    // draws a fresh fault decision.
                    nonce: mix64(*nonce_base ^ p.attempt as u64),
                },
                PendingKind::Probe { target, nonce_base } => RetryAction::Probe {
                    target: *target,
                    nonce: mix64(*nonce_base ^ p.attempt as u64),
                },
            };
            self.events.push(ProtocolEvent::Retried {
                peer: self.id,
                op: p.kind.op(),
                attempt: p.attempt,
            });
            actions.push(action);
            keep.push(p);
        }
        self.timers = keep;
        let mut outs = Vec::new();
        for action in actions {
            match action {
                RetryAction::Join { contact, attempt } => {
                    if !self.joined {
                        outs.push(Outbound::new(
                            contact,
                            Message::JoinRequest {
                                joiner: self.id,
                                attempt,
                            },
                        ));
                    }
                }
                RetryAction::Walk { walk_id, attempt } => {
                    let token = self.walk_token(walk_id, attempt);
                    outs.push(self.step_walk(token));
                }
                RetryAction::Query { qid, key, attempt } => {
                    let mut token = QueryToken::new(qid, self.id, key, self.cfg.query_budget);
                    token.attempt = attempt;
                    outs.extend(self.process_query(token));
                }
                RetryAction::Link { target, nonce } => {
                    outs.push(Outbound::new(target, Message::LinkRequest { nonce }));
                }
                RetryAction::Probe { target, nonce } => {
                    outs.push(Outbound::new(target, Message::Ping { nonce }));
                }
            }
        }
        for (kind, attempts) in gaveups {
            self.events.push(ProtocolEvent::GaveUp {
                peer: self.id,
                op: kind.op(),
                attempts,
            });
            outs.extend(self.give_up(kind, attempts));
        }
        outs
    }

    /// Graceful degradation when an operation exhausts its retries: the
    /// walk batch settles without the lost walk (a shorter sample), the
    /// query reports failure cleanly, the join stays pending for the
    /// harness to reissue — never a [`ProtocolEvent::Fault`].
    fn give_up(&mut self, kind: PendingKind, attempts: u32) -> Vec<Outbound> {
        match kind {
            PendingKind::Join { .. } => Vec::new(),
            PendingKind::Walk { walk_id } => {
                if let Some(batch) = self.batch.as_mut() {
                    batch.pending.retain(|&(w, _)| w != walk_id);
                }
                self.try_settle_batch()
            }
            PendingKind::Query { qid, key } => {
                // The timer entry is already gone; report directly.
                self.events.push(ProtocolEvent::QueryCompleted(QueryReport {
                    qid,
                    origin: self.id,
                    key,
                    success: false,
                    hops: 0,
                    wasted: 0,
                    backtracks: 0,
                    attempt: attempts,
                    dest: None,
                }));
                Vec::new()
            }
            PendingKind::Link { target, .. } => {
                // Best-effort cleanup: if the target granted the slot but
                // every accept was lost, the unlink releases it; if the
                // target never heard us, it's a no-op there.
                vec![Outbound::new(target, Message::Unlink)]
            }
            PendingKind::Probe { target, .. } => {
                // The failure detector's verdict: a drained probe budget
                // declares the neighbour dead and triggers repair.
                self.declare_dead(target, RepairTrigger::RingDetect)
            }
        }
    }

    // --- failure detection: ring probes, verdicts, repair --------------------

    /// One ring-probe round: ping the predecessor and the leading
    /// successors (depth `k` under [`RepairPolicy::ReactiveK`], 1
    /// otherwise). Targets with a probe still pending are skipped — the
    /// in-flight verdict stands. The driver owns the cadence; the machine
    /// owns the verdict.
    fn probe_ring(&mut self) -> Vec<Outbound> {
        self.probe_epoch += 1;
        let depth = match self.cfg.repair {
            RepairPolicy::ReactiveK { k } => k.max(1),
            _ => 1,
        };
        let mut targets: Vec<Id> = Vec::new();
        if self.pred != self.id {
            targets.push(self.pred);
        }
        for &s in self.succs.iter().take(depth) {
            if s != self.id && !targets.contains(&s) {
                targets.push(s);
            }
        }
        let mut outs = Vec::new();
        for t in targets {
            if self
                .timers
                .iter()
                .any(|p| matches!(p.kind, PendingKind::Probe { target, .. } if target == t))
            {
                continue;
            }
            // Nonce salted by the probe epoch: the same edge rolls fresh
            // fault dice every round (and keys a fresh retry stream).
            let nonce_base = mix64(mix64(self.seed ^ t.raw()) ^ self.probe_epoch);
            self.arm_timer(PendingKind::Probe {
                target: t,
                nonce_base,
            });
            outs.push(Outbound::new(t, Message::Ping { nonce: nonce_base }));
        }
        outs
    }

    /// Graceful departure: announce the hand-over to ring neighbours,
    /// dissolve long links both ways, cancel every pending operation and
    /// go quiet. The driver removes the actor once the farewells flush.
    fn depart(&mut self) -> Vec<Outbound> {
        let farewell = Message::Leaving {
            pred: self.pred,
            succs: self.succs.clone(),
        };
        let mut targets: Vec<Id> = Vec::new();
        if self.pred != self.id {
            targets.push(self.pred);
        }
        for &s in &self.succs {
            if s != self.id && !targets.contains(&s) {
                targets.push(s);
            }
        }
        let mut outs: Vec<Outbound> = targets
            .into_iter()
            .map(|t| Outbound::new(t, farewell.clone()))
            .collect();
        for t in self.long_out.drain(..) {
            outs.push(Outbound::new(t, Message::Unlink));
        }
        for t in std::mem::take(&mut self.long_in) {
            outs.push(Outbound::new(t, Message::Unlink));
        }
        self.timers.clear();
        self.batch = None;
        self.joined = false;
        outs
    }

    /// The failure detector's verdict on `dead`: purge it from every
    /// table, re-stitch the ring (claim the vacated predecessor slot of
    /// the next successor), and — when the policy and detection channel
    /// agree — rewire long links with fresh walks.
    ///
    /// The predecessor pointer is *not* reset to `self` when the corpse
    /// was our predecessor: that would claim the whole remaining arc. It
    /// dangles until the corpse's own predecessor claims the slot (its
    /// `PredUpdate`, or its pings once the suspect gate opens).
    fn declare_dead(&mut self, dead: Id, trigger: RepairTrigger) -> Vec<Outbound> {
        if dead == self.id {
            return Vec::new();
        }
        self.clear_probe(dead);
        self.suspect(dead);
        self.known.retain(|&x| x != dead);
        self.long_in.retain(|&x| x != dead);
        // The dangling out-link is just gone either way — the corpse can
        // never unlink back (mirrors simulator crashes).
        self.long_out.retain(|&x| x != dead);
        let was_head = self.succs.first() == Some(&dead);
        self.succs.retain(|&x| x != dead);
        let mut outs = Vec::new();
        if was_head {
            if let Some(&ns) = self.succs.first() {
                // My old head sat between me and `ns`: claim its slot.
                outs.push(Outbound::new(ns, Message::PredUpdate));
            }
        }
        let rewire = matches!(
            (self.cfg.repair, trigger),
            (RepairPolicy::ReactiveK { .. }, RepairTrigger::RingDetect)
                | (RepairPolicy::OnProbe, RepairTrigger::QueryDetect)
        );
        if rewire {
            let walks = self.cfg.repair_walks;
            self.events.push(ProtocolEvent::RepairFired {
                peer: self.id,
                dead,
                trigger,
                walks,
            });
            // Full rewire, exactly like `Command::Rewire`: dissolve the
            // surviving out-links and rebuild the whole budget — the
            // machine port of the churn engine's `builder.rewire`.
            let dropped: Vec<Id> = self.long_out.drain(..).collect();
            for t in dropped {
                outs.push(Outbound::new(t, Message::Unlink));
            }
            outs.extend(self.launch_walks(walks));
        }
        outs
    }

    /// Records `dead` in the bounded suspect list.
    fn suspect(&mut self, dead: Id) {
        if let Err(pos) = self.suspects.binary_search(&dead) {
            self.suspects.insert(pos, dead);
            if self.suspects.len() > SUSPECT_CAP {
                // Deterministic trim: drop the clockwise-farthest suspect
                // (ring surgery only ever needs the nearby ones).
                if let Some(far) =
                    (0..self.suspects.len()).max_by_key(|&i| self.id.cw_dist(self.suspects[i]))
                {
                    self.suspects.remove(far);
                }
            }
        }
    }

    fn clear_probe(&mut self, target: Id) {
        self.timers
            .retain(|p| !matches!(p.kind, PendingKind::Probe { target: t, .. } if t == target));
    }

    /// Merges a received successor list into ours: suspects, self and
    /// duplicates excluded, clockwise-nearest `succ_len` kept.
    fn merge_succs(&mut self, incoming: &[Id]) {
        let mut changed = false;
        for &s in incoming {
            if s != self.id && !self.succs.contains(&s) && self.suspects.binary_search(&s).is_err()
            {
                self.succs.push(s);
                changed = true;
            }
        }
        if changed {
            let me = self.id;
            self.succs.sort_unstable_by_key(|&s| me.cw_dist(s));
            self.succs.truncate(self.cfg.succ_len);
        }
        for &s in incoming {
            self.note_peer(s);
        }
    }

    /// Guarded predecessor adoption (the `PredUpdate` rule): accept
    /// `from` when it is strictly closer than the current predecessor, or
    /// when the current predecessor has been declared dead. Shared by
    /// `PredUpdate` and `Ping` (Chord-notify style), so ring re-stitching
    /// converges to the closest live claimant in any delivery order.
    fn maybe_adopt_pred(&mut self, from: Id) {
        if from == self.id || from == self.pred {
            return;
        }
        let closer = self.pred == self.id || logic::owns(self.pred, self.id, from);
        let pred_suspect = self.suspects.binary_search(&self.pred).is_ok();
        if closer || pred_suspect {
            self.pred = from;
            self.note_peer(from);
        }
    }

    // --- gossip membership -----------------------------------------------------

    fn gossip_round(&mut self, rng: &mut dyn RngCore) -> Vec<Outbound> {
        if self.known.is_empty() {
            return Vec::new();
        }
        let fanout = self.cfg.gossip_fanout.min(self.known.len());
        let mut idxs: Vec<usize> = (0..self.known.len()).collect();
        // Partial Fisher–Yates for `fanout` distinct targets.
        for i in 0..fanout {
            // lint:allow(rng-discipline, gossip is the one driver-RNG activity by design — it never feeds a measured artifact)
            let j = i + (rng.next_u64() as usize) % (idxs.len() - i);
            idxs.swap(i, j);
        }
        let view = self.view_sample(rng);
        idxs[..fanout]
            .iter()
            .map(|&i| Outbound::new(self.known[i], Message::GossipPush { view: view.clone() }))
            .collect()
    }

    /// A bounded sample of the view (always includes this peer).
    fn view_sample(&self, rng: &mut dyn RngCore) -> Vec<Id> {
        let mut view = Vec::with_capacity(self.cfg.gossip_sample);
        view.push(self.id);
        if self.known.is_empty() {
            return view;
        }
        let want = self
            .cfg
            .gossip_sample
            .saturating_sub(1)
            .min(self.known.len());
        let mut idxs: Vec<usize> = (0..self.known.len()).collect();
        for i in 0..want {
            // lint:allow(rng-discipline, view sampling rides the gossip driver stream — never feeds a measured artifact)
            let j = i + (rng.next_u64() as usize) % (idxs.len() - i);
            idxs.swap(i, j);
        }
        view.extend(idxs[..want].iter().map(|&i| self.known[i]));
        view
    }

    /// Records `p` in the bounded membership view (ignores self).
    fn note_peer(&mut self, p: Id) {
        if p == self.id {
            return;
        }
        if let Err(pos) = self.known.binary_search(&p) {
            self.known.insert(pos, p);
            if self.known.len() > self.cfg.view_cap {
                // Deterministic trim: drop the clockwise-farthest entry.
                // (The view is non-empty here — we just inserted — so the
                // `if let` always takes; it exists to satisfy panic-policy.)
                if let Some(far) =
                    (0..self.known.len()).max_by_key(|&i| self.id.cw_dist(self.known[i]))
                {
                    self.known.remove(far);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A minimal in-test pump: synchronous message delivery until quiet.
    struct Pump {
        peers: BTreeMap<Id, PeerMachine>,
        queue: std::collections::VecDeque<(Id, Outbound)>,
        delivered: usize,
    }

    impl Pump {
        fn new(peers: Vec<PeerMachine>) -> Self {
            Pump {
                peers: peers.into_iter().map(|p| (p.id(), p)).collect(),
                queue: Default::default(),
                delivered: 0,
            }
        }

        fn command(&mut self, at: Id, cmd: Command) {
            let mut rng = SeedTree::new(0).rng();
            let outs = self.peers.get_mut(&at).unwrap().on_command(cmd, &mut rng);
            for o in outs {
                self.queue.push_back((at, o));
            }
            self.run();
        }

        fn run(&mut self) {
            let mut rng = SeedTree::new(1).rng();
            while let Some((from, out)) = self.queue.pop_front() {
                self.delivered += 1;
                assert!(self.delivered < 100_000, "message storm");
                let outs = if let Some(peer) = self.peers.get_mut(&out.to) {
                    peer.on_message(from, out.msg, &mut rng)
                } else {
                    self.peers
                        .get_mut(&from)
                        .unwrap()
                        .on_delivery_failure(out.to, out.msg)
                };
                let at = out.to;
                for o in outs {
                    // Failure replies originate at the original sender.
                    let src = if self.peers.contains_key(&at) {
                        at
                    } else {
                        from
                    };
                    self.queue.push_back((src, o));
                }
            }
        }
    }

    fn machines(ids: &[u64]) -> Vec<PeerMachine> {
        machines_with(ids, PeerConfig::default())
    }

    fn machines_with(ids: &[u64], cfg: PeerConfig) -> Vec<PeerMachine> {
        ids.iter()
            .map(|&i| PeerMachine::new(Id::new(i), 1000 + i, cfg.clone()))
            .collect()
    }

    #[test]
    fn serial_joins_build_a_consistent_ring() {
        let ids = [100u64, 900, 300, 700, 500, 42, 650];
        let mut pump = Pump::new(machines(&ids));
        let contact = Id::new(ids[0]);
        for &i in &ids[1..] {
            pump.command(Id::new(i), Command::Join { contact });
        }
        // Ring must be exactly the sorted id cycle.
        let mut sorted: Vec<Id> = ids.iter().map(|&i| Id::new(i)).collect();
        sorted.sort_unstable();
        for (k, &id) in sorted.iter().enumerate() {
            let m = &pump.peers[&id];
            let succ = sorted[(k + 1) % sorted.len()];
            let pred = sorted[(k + sorted.len() - 1) % sorted.len()];
            assert_eq!(m.succs()[0], succ, "succ of {id:?}");
            assert_eq!(m.pred(), pred, "pred of {id:?}");
            assert!(m.joined());
        }
    }

    #[test]
    fn walks_settle_and_install_links() {
        let ids = [10u64, 20, 30, 40, 50, 60, 70, 80];
        let mut pump = Pump::new(machines(&ids));
        let contact = Id::new(10);
        for &i in &ids[1..] {
            pump.command(Id::new(i), Command::Join { contact });
        }
        for &i in &ids {
            pump.command(Id::new(i), Command::BuildLinks { walks: 3 });
        }
        // Every out-link must be mirrored by the target's in-link.
        let snapshot: Vec<(Id, Vec<Id>)> = pump
            .peers
            .values()
            .map(|m| (m.id(), m.long_out().to_vec()))
            .collect();
        let mut total = 0;
        for (id, outs) in snapshot {
            for t in outs {
                total += 1;
                assert!(
                    pump.peers[&t].long_in().contains(&id),
                    "{t:?} missing in-link from {id:?}"
                );
            }
        }
        assert!(total > 0, "no long links formed");
        for m in pump.peers.values_mut() {
            let settled = m
                .drain_events()
                .iter()
                .any(|e| matches!(e, ProtocolEvent::WalksSettled { .. }));
            assert!(settled, "walk batch never settled");
        }
    }

    #[test]
    fn queries_resolve_to_ring_owners() {
        let ids = [100u64, 300, 500, 700, 900];
        let mut pump = Pump::new(machines(&ids));
        let contact = Id::new(100);
        for &i in &ids[1..] {
            pump.command(Id::new(i), Command::Join { contact });
        }
        // (key, owner): owner = first peer at-or-after the key, wrapping.
        let cases = [
            (150u64, 300u64),
            (300, 300),
            (901, 100),
            (50, 100),
            (699, 700),
        ];
        for (qid, (key, owner)) in cases.iter().enumerate() {
            let origin = Id::new(500);
            pump.command(
                origin,
                Command::StartQuery {
                    qid: qid as u64,
                    key: Id::new(*key),
                },
            );
            let events = pump.peers.get_mut(&origin).unwrap().drain_events();
            let report = events
                .iter()
                .find_map(|e| match e {
                    ProtocolEvent::QueryCompleted(r) if r.qid == qid as u64 => Some(r.clone()),
                    _ => None,
                })
                .expect("query completed");
            assert!(report.success, "query {qid} failed");
            assert_eq!(report.dest, Some(Id::new(*owner)), "key {key}");
        }
    }

    #[test]
    fn self_owned_query_costs_nothing() {
        let ids = [100u64, 200];
        let mut pump = Pump::new(machines(&ids));
        pump.command(
            Id::new(200),
            Command::Join {
                contact: Id::new(100),
            },
        );
        let origin = Id::new(200);
        pump.command(
            origin,
            Command::StartQuery {
                qid: 9,
                key: Id::new(150),
            },
        );
        let events = pump.peers.get_mut(&origin).unwrap().drain_events();
        let r = events
            .iter()
            .find_map(|e| match e {
                ProtocolEvent::QueryCompleted(r) => Some(r.clone()),
                _ => None,
            })
            .expect("completed");
        assert!(r.success);
        assert_eq!(r.hops, 0);
        assert_eq!(r.cost(), 0);
    }

    #[test]
    fn gossip_spreads_membership() {
        let ids = [1u64, 2, 3, 4, 5, 6];
        let mut pump = Pump::new(machines(&ids));
        let contact = Id::new(1);
        for &i in &ids[1..] {
            pump.command(Id::new(i), Command::Join { contact });
        }
        for _ in 0..6 {
            for &i in &ids {
                pump.command(Id::new(i), Command::GossipTick);
            }
        }
        for m in pump.peers.values() {
            assert!(
                m.known().len() >= ids.len() - 2,
                "{:?} knows only {:?}",
                m.id(),
                m.known()
            );
        }
    }

    #[test]
    fn dead_destination_querying_backtracks_or_fails_cleanly() {
        // Build a 4-ring, then delete a machine outright; queries routed
        // through the hole must still terminate with a report.
        let ids = [100u64, 200, 300, 400];
        let mut pump = Pump::new(machines(&ids));
        for &i in &ids[1..] {
            pump.command(
                Id::new(i),
                Command::Join {
                    contact: Id::new(100),
                },
            );
        }
        pump.peers.remove(&Id::new(300));
        let origin = Id::new(100);
        pump.command(
            origin,
            Command::StartQuery {
                qid: 1,
                key: Id::new(250),
            },
        );
        let events = pump.peers.get_mut(&origin).unwrap().drain_events();
        let r = events
            .iter()
            .find_map(|e| match e {
                ProtocolEvent::QueryCompleted(r) => Some(r.clone()),
                _ => None,
            })
            .expect("query must terminate despite the corpse");
        assert!(r.wasted > 0, "corpse probe must be charged");
    }

    #[test]
    fn duplicated_query_envelope_is_suppressed() {
        let ids = [100u64, 300, 500, 700];
        let mut pump = Pump::new(machines(&ids));
        for &i in &ids[1..] {
            pump.command(
                Id::new(i),
                Command::Join {
                    contact: Id::new(100),
                },
            );
        }
        // Issue a query by hand so its first-hop envelope can be replayed.
        let mut rng = SeedTree::new(2).rng();
        let origin = Id::new(100);
        let outs = pump.peers.get_mut(&origin).unwrap().on_command(
            Command::StartQuery {
                qid: 7,
                key: Id::new(650),
            },
            &mut rng,
        );
        assert_eq!(outs.len(), 1);
        let Outbound { to, msg } = outs[0].clone();
        let first = pump
            .peers
            .get_mut(&to)
            .unwrap()
            .on_message(origin, msg.clone(), &mut rng);
        assert!(!first.is_empty(), "first delivery must advance the query");
        let second = pump
            .peers
            .get_mut(&to)
            .unwrap()
            .on_message(origin, msg, &mut rng);
        assert!(second.is_empty(), "duplicated delivery must be suppressed");
    }

    #[test]
    fn duplicated_walk_probe_does_not_double_advance() {
        let ids = [10u64, 20, 30, 40];
        let mut pump = Pump::new(machines(&ids));
        for &i in &ids[1..] {
            pump.command(
                Id::new(i),
                Command::Join {
                    contact: Id::new(10),
                },
            );
        }
        let mut rng = SeedTree::new(4).rng();
        let origin = Id::new(10);
        let outs = pump
            .peers
            .get_mut(&origin)
            .unwrap()
            .on_command(Command::BuildLinks { walks: 1 }, &mut rng);
        assert_eq!(outs.len(), 1);
        let Outbound { to, msg } = outs[0].clone();
        assert!(matches!(msg, Message::WalkProbe(_)));
        let first = pump
            .peers
            .get_mut(&to)
            .unwrap()
            .on_message(origin, msg.clone(), &mut rng);
        assert!(!first.is_empty(), "first probe must advance or reject");
        let second = pump
            .peers
            .get_mut(&to)
            .unwrap()
            .on_message(origin, msg, &mut rng);
        assert!(second.is_empty(), "duplicated probe must be suppressed");
    }

    #[test]
    fn query_timeout_retries_then_gives_up_cleanly() {
        // A bootstrapped peer whose only neighbour never answers (we drop
        // every send on the floor): only the timer path can finish the
        // query — via retries, then a graceful failure report.
        let mut m = PeerMachine::new(Id::new(100), 1, PeerConfig::default());
        let mut rng = SeedTree::new(3).rng();
        m.on_command(
            Command::Bootstrap {
                pred: Id::new(900),
                succs: vec![Id::new(900)],
                known: vec![Id::new(900)],
            },
            &mut rng,
        );
        let outs = m.on_command(
            Command::StartQuery {
                qid: 1,
                key: Id::new(500),
            },
            &mut rng,
        );
        assert!(!outs.is_empty(), "the probe must leave the origin");
        let mut now = 0;
        for _ in 0..64 {
            let Some(d) = m.next_deadline() else { break };
            now = now.max(d);
            m.on_command(Command::TimerTick { now }, &mut rng);
        }
        assert!(
            m.next_deadline().is_none(),
            "query must not stay pending forever"
        );
        let events = m.drain_events();
        let retried = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    ProtocolEvent::Retried {
                        op: OpKind::Query,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(retried, PeerConfig::default().max_retries as usize);
        assert!(events.iter().any(|e| matches!(
            e,
            ProtocolEvent::GaveUp {
                op: OpKind::Query,
                ..
            }
        )));
        let report = events
            .iter()
            .find_map(|e| match e {
                ProtocolEvent::QueryCompleted(r) => Some(r.clone()),
                _ => None,
            })
            .expect("gave-up query must still complete");
        assert!(!report.success);
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, ProtocolEvent::Fault { .. })),
            "graceful degradation must not raise Fault"
        );
    }

    #[test]
    fn crashed_neighbor_is_detected_and_ring_restitched() {
        let ids = [10u64, 20, 30, 40, 50, 60];
        let cfg = PeerConfig {
            repair: RepairPolicy::ReactiveK { k: 2 },
            ..PeerConfig::default()
        };
        let mut pump = Pump::new(machines_with(&ids, cfg));
        for &i in &ids[1..] {
            pump.command(
                Id::new(i),
                Command::Join {
                    contact: Id::new(10),
                },
            );
        }
        pump.peers.remove(&Id::new(40)); // crash
                                         // Several probe rounds: the first detects the corpse everywhere it
                                         // is probed (bounced pings are instant verdicts); the following
                                         // rounds let pong successor-merges fill the sparse join-time succ
                                         // lists and the predecessor's pings re-stitch the pred pointers
                                         // (Chord-style stabilisation converges at probe cadence).
        for _ in 0..4 {
            for &i in &ids {
                if i != 40 {
                    pump.command(Id::new(i), Command::ProbeRing);
                }
            }
        }
        assert_eq!(pump.peers[&Id::new(30)].succs()[0], Id::new(50));
        assert_eq!(pump.peers[&Id::new(50)].pred(), Id::new(30));
        assert!(pump.peers[&Id::new(30)].suspects().contains(&Id::new(40)));
        let repaired = pump
            .peers
            .get_mut(&Id::new(30))
            .unwrap()
            .drain_events()
            .iter()
            .any(|e| {
                matches!(
                    e,
                    ProtocolEvent::RepairFired {
                        dead,
                        trigger: crate::message::RepairTrigger::RingDetect,
                        ..
                    } if *dead == Id::new(40)
                )
            });
        assert!(repaired, "the corpse's predecessor must fire a repair");
    }

    #[test]
    fn probe_timeout_declares_dead_without_a_bounce() {
        // A machine whose probes vanish into the void (no bounce, no
        // pong): only the timer table can convict. This is the blackhole
        // crash mode of the fault plan.
        let cfg = PeerConfig {
            repair: RepairPolicy::ReactiveK { k: 2 },
            ..PeerConfig::default()
        };
        let mut m = PeerMachine::new(Id::new(100), 1, cfg);
        let mut rng = SeedTree::new(3).rng();
        m.on_command(
            Command::Bootstrap {
                pred: Id::new(50),
                succs: vec![Id::new(200), Id::new(300)],
                known: vec![Id::new(200), Id::new(300)],
            },
            &mut rng,
        );
        let outs = m.on_command(Command::ProbeRing, &mut rng);
        assert_eq!(outs.len(), 3, "pred + k successors must be probed");
        let mut now = 0;
        for _ in 0..128 {
            let Some(d) = m.next_deadline() else { break };
            now = now.max(d);
            m.on_command(Command::TimerTick { now }, &mut rng);
        }
        assert!(m.suspects().contains(&Id::new(200)));
        assert!(!m.succs().contains(&Id::new(200)));
        let events = m.drain_events();
        assert!(
            events.iter().any(|e| matches!(
                e,
                ProtocolEvent::RepairFired {
                    trigger: crate::message::RepairTrigger::RingDetect,
                    ..
                }
            )),
            "drained probe budget must fire a repair"
        );
    }

    #[test]
    fn graceful_departure_splices_without_detection() {
        let ids = [10u64, 20, 30, 40, 50, 60];
        let mut pump = Pump::new(machines(&ids));
        for &i in &ids[1..] {
            pump.command(
                Id::new(i),
                Command::Join {
                    contact: Id::new(10),
                },
            );
        }
        pump.command(Id::new(40), Command::BuildLinks { walks: 2 });
        pump.command(Id::new(40), Command::Depart);
        pump.peers.remove(&Id::new(40));
        assert_eq!(pump.peers[&Id::new(30)].succs()[0], Id::new(50));
        assert_eq!(pump.peers[&Id::new(50)].pred(), Id::new(30));
        // The leaver's links dissolved both ways: no survivor still
        // references it.
        for m in pump.peers.values() {
            assert!(!m.long_out().contains(&Id::new(40)), "{:?}", m.id());
            assert!(!m.long_in().contains(&Id::new(40)), "{:?}", m.id());
            assert!(!m.succs().contains(&Id::new(40)), "{:?}", m.id());
            assert_ne!(m.pred(), Id::new(40), "{:?}", m.id());
        }
    }

    #[test]
    fn on_probe_repair_rewires_the_prober() {
        let ids = [100u64, 200, 300, 400];
        let cfg = PeerConfig {
            repair: RepairPolicy::OnProbe,
            ..PeerConfig::default()
        };
        let mut pump = Pump::new(machines_with(&ids, cfg));
        for &i in &ids[1..] {
            pump.command(
                Id::new(i),
                Command::Join {
                    contact: Id::new(100),
                },
            );
        }
        pump.peers.remove(&Id::new(300));
        pump.command(
            Id::new(100),
            Command::StartQuery {
                qid: 1,
                key: Id::new(250),
            },
        );
        // Whichever peer forwarded into the corpse must have fired an
        // on-probe repair with the query-bounce trigger.
        let fired = pump.peers.values_mut().any(|m| {
            m.drain_events().iter().any(|e| {
                matches!(
                    e,
                    ProtocolEvent::RepairFired {
                        dead,
                        trigger: crate::message::RepairTrigger::QueryDetect,
                        ..
                    } if *dead == Id::new(300)
                )
            })
        });
        assert!(fired, "a query bounce must trigger the prober's rewire");
    }

    #[test]
    fn rewire_dissolves_and_rebuilds_long_links() {
        let ids = [10u64, 20, 30, 40, 50, 60];
        let mut pump = Pump::new(machines(&ids));
        for &i in &ids[1..] {
            pump.command(
                Id::new(i),
                Command::Join {
                    contact: Id::new(10),
                },
            );
        }
        pump.command(Id::new(10), Command::BuildLinks { walks: 2 });
        let before = pump.peers[&Id::new(10)].long_out().to_vec();
        pump.command(Id::new(10), Command::Rewire { walks: 2 });
        let after = pump.peers[&Id::new(10)].long_out().to_vec();
        // Old partners must have dropped the in-link unless re-chosen.
        for t in before {
            if !after.contains(&t) {
                assert!(!pump.peers[&t].long_in().contains(&Id::new(10)));
            }
        }
    }
}
