//! The per-peer protocol state machine.
//!
//! A [`PeerMachine`] owns exactly what a real Oscar node would own — its
//! ring links (predecessor + successor list), its long links, a bounded
//! membership view — and advances only by handling one message or one
//! local command at a time, returning the messages it wants delivered.
//! It never touches a global snapshot; *who* delivers the messages (the
//! discrete-event simulator, the threaded actor runtime, or a unit
//! test's hand pump) is the driver's business.
//!
//! Determinism boundary: every stochastic protocol decision (walk
//! proposals, MH acceptances) draws from the RNG *carried inside the
//! token*, so outcomes are a pure function of the token seed and the
//! link tables it traverses — independent of scheduling. The only
//! handler that uses the driver-supplied RNG is gossip, which is
//! explicitly outside the deterministic core.

use crate::logic;
use crate::message::{Command, Message, Outbound, ProtocolEvent, QueryReport};
use crate::token::{QueryToken, TokenRng, WalkToken};
use oscar_types::labels::protocol_machine::{LBL_PEER, LBL_WALK};
use oscar_types::{Id, SeedTree};
use rand::RngCore;

/// The canonical per-peer machine seed for a deployment rooted at
/// `root_seed`. Every driver must use this derivation so that the same
/// deployment seed yields the same walk-token streams in all worlds —
/// the cross-driver equivalence test depends on it.
pub fn peer_seed(root_seed: u64, id: Id) -> u64 {
    // lint:allow(rng-discipline, this is THE canonical entry point every driver shares to root per-peer streams)
    SeedTree::new(root_seed).child2(LBL_PEER, id.raw()).seed()
}

/// Tunables of one peer (uniform across a deployment in this PR).
#[derive(Clone, Debug, PartialEq)]
pub struct PeerConfig {
    /// Successor-list length (ring resilience).
    pub succ_len: usize,
    /// Long out-link budget (links this peer initiates).
    pub max_long_out: usize,
    /// Long in-link budget (links this peer accepts).
    pub max_long_in: usize,
    /// MH walk length per sample (burn-in of the sampling chain).
    pub walk_ttl: u32,
    /// Message budget per query.
    pub query_budget: u32,
    /// Peers contacted per gossip round.
    pub gossip_fanout: usize,
    /// View entries shipped per gossip message.
    pub gossip_sample: usize,
    /// Bound on the membership view.
    pub view_cap: usize,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            succ_len: 8,
            max_long_out: 5,
            max_long_in: 10,
            walk_ttl: 16,
            query_budget: 4096,
            gossip_fanout: 2,
            gossip_sample: 8,
            view_cap: 128,
        }
    }
}

/// One walk batch in flight: walks in launch order, samples as they land.
#[derive(Clone, Debug, Default)]
struct WalkBatch {
    pending: Vec<(u64, Option<Id>)>,
}

/// A pure, side-effect-free Oscar peer.
#[derive(Clone, Debug)]
pub struct PeerMachine {
    id: Id,
    seed: u64,
    cfg: PeerConfig,
    /// Ring predecessor; `id` itself when alone.
    pred: Id,
    /// Successor list, nearest first; empty when alone.
    succs: Vec<Id>,
    /// Long links this peer initiated (sorted).
    long_out: Vec<Id>,
    /// Long links this peer accepted (sorted).
    long_in: Vec<Id>,
    /// Bounded gossip membership view (sorted, excludes `id`).
    known: Vec<Id>,
    joined: bool,
    walk_counter: u64,
    batch: Option<WalkBatch>,
    events: Vec<ProtocolEvent>,
}

impl PeerMachine {
    /// A solo peer: its own predecessor, owning the whole ring.
    pub fn new(id: Id, seed: u64, cfg: PeerConfig) -> Self {
        PeerMachine {
            id,
            seed,
            cfg,
            pred: id,
            succs: Vec::new(),
            long_out: Vec::new(),
            long_in: Vec::new(),
            known: Vec::new(),
            joined: false,
            walk_counter: 0,
            batch: None,
            events: Vec::new(),
        }
    }

    // --- read-only state access (drivers, tests, fingerprints) -----------

    /// This peer's ring position.
    pub fn id(&self) -> Id {
        self.id
    }

    /// Current ring predecessor (`id()` when alone).
    pub fn pred(&self) -> Id {
        self.pred
    }

    /// Successor list, nearest first.
    pub fn succs(&self) -> &[Id] {
        &self.succs
    }

    /// Long out-links, sorted.
    pub fn long_out(&self) -> &[Id] {
        &self.long_out
    }

    /// Long in-links, sorted.
    pub fn long_in(&self) -> &[Id] {
        &self.long_in
    }

    /// Membership view, sorted.
    pub fn known(&self) -> &[Id] {
        &self.known
    }

    /// True once the peer has spliced into the ring (or was bootstrapped).
    pub fn joined(&self) -> bool {
        self.joined
    }

    /// Canonical neighbour table: predecessor, successors, and long links,
    /// sorted and de-duplicated. Identical across drivers by construction,
    /// which is what makes token walks scheduling-independent.
    pub fn neighbors(&self) -> Vec<Id> {
        let mut t: Vec<Id> =
            Vec::with_capacity(1 + self.succs.len() + self.long_out.len() + self.long_in.len());
        if self.pred != self.id {
            t.push(self.pred);
        }
        t.extend_from_slice(&self.succs);
        t.extend_from_slice(&self.long_out);
        t.extend_from_slice(&self.long_in);
        t.sort_unstable();
        t.dedup();
        t.retain(|&x| x != self.id);
        t
    }

    /// Walk degree (size of the canonical neighbour table).
    pub fn degree(&self) -> usize {
        self.neighbors().len()
    }

    /// Full link-table fingerprint for equivalence checks:
    /// `(pred, succs, long_out, long_in)`.
    pub fn fingerprint(&self) -> (Id, Vec<Id>, Vec<Id>, Vec<Id>) {
        (
            self.pred,
            self.succs.clone(),
            self.long_out.clone(),
            self.long_in.clone(),
        )
    }

    /// Drains the milestones observed since the last drain.
    pub fn drain_events(&mut self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut self.events)
    }

    // --- command handling --------------------------------------------------

    /// Handles a local driver command.
    pub fn on_command(&mut self, cmd: Command, rng: &mut dyn RngCore) -> Vec<Outbound> {
        match cmd {
            Command::Bootstrap { pred, succs, known } => {
                self.pred = pred;
                self.succs = succs;
                self.succs.truncate(self.cfg.succ_len);
                for k in known {
                    self.note_peer(k);
                }
                self.joined = true;
                Vec::new()
            }
            Command::Join { contact } => {
                if self.joined {
                    return Vec::new();
                }
                self.note_peer(contact);
                vec![Outbound::new(
                    contact,
                    Message::JoinRequest { joiner: self.id },
                )]
            }
            Command::BuildLinks { walks } => self.launch_walks(walks),
            Command::Rewire { walks } => {
                let mut outs: Vec<Outbound> = self
                    .long_out
                    .drain(..)
                    .map(|t| Outbound::new(t, Message::Unlink))
                    .collect();
                outs.extend(self.launch_walks(walks));
                outs
            }
            Command::StartQuery { qid, key } => {
                let token = QueryToken::new(qid, self.id, key, self.cfg.query_budget);
                self.process_query(token)
            }
            Command::GossipTick => self.gossip_round(rng),
        }
    }

    /// Handles one delivered message from `from`.
    pub fn on_message(&mut self, from: Id, msg: Message, rng: &mut dyn RngCore) -> Vec<Outbound> {
        match msg {
            Message::JoinRequest { joiner } => self.handle_join_request(joiner),
            Message::JoinWelcome { pred, succs } => {
                self.pred = pred;
                self.succs = succs;
                self.succs.truncate(self.cfg.succ_len);
                self.joined = true;
                let snapshot: Vec<Id> = self.succs.clone();
                for s in snapshot {
                    self.note_peer(s);
                }
                self.note_peer(pred);
                self.events
                    .push(ProtocolEvent::JoinCompleted { peer: self.id });
                if self.pred != self.id {
                    vec![Outbound::new(
                        self.pred,
                        Message::NewSuccessor { succ: self.id },
                    )]
                } else {
                    Vec::new()
                }
            }
            Message::NewSuccessor { succ } => {
                self.note_peer(succ);
                let closer = self
                    .succs
                    .first()
                    .map(|&s0| succ != s0 && self.id.cw_dist(succ) < self.id.cw_dist(s0))
                    .unwrap_or(true);
                if closer && succ != self.id {
                    self.succs.insert(0, succ);
                    self.succs.truncate(self.cfg.succ_len);
                }
                Vec::new()
            }
            Message::WalkProbe(mut token) => {
                token.remaining = token.remaining.saturating_sub(1);
                let my_deg = self.degree();
                let accept = logic::mh_accept(token.holder_deg, my_deg, || token.rng.unit_f64());
                if accept && my_deg > 0 {
                    if token.remaining == 0 {
                        vec![Outbound::new(
                            token.origin,
                            Message::WalkDone {
                                walk_id: token.walk_id,
                                sample: self.id,
                            },
                        )]
                    } else {
                        vec![self.step_walk(token)]
                    }
                } else {
                    vec![Outbound::new(from, Message::WalkReject(token))]
                }
            }
            Message::WalkReject(token) => {
                if token.remaining == 0 {
                    vec![Outbound::new(
                        token.origin,
                        Message::WalkDone {
                            walk_id: token.walk_id,
                            sample: self.id,
                        },
                    )]
                } else {
                    vec![self.step_walk(token)]
                }
            }
            Message::WalkDone { walk_id, sample } => {
                self.note_peer(sample);
                self.record_walk_done(walk_id, sample)
            }
            Message::LinkRequest => {
                if from != self.id && self.long_in.len() < self.cfg.max_long_in {
                    if let Err(pos) = self.long_in.binary_search(&from) {
                        self.long_in.insert(pos, from);
                        self.note_peer(from);
                        return vec![Outbound::new(from, Message::LinkAccept)];
                    }
                }
                vec![Outbound::new(from, Message::LinkReject)]
            }
            Message::LinkAccept => {
                self.note_peer(from);
                if self.long_out.len() < self.cfg.max_long_out {
                    if let Err(pos) = self.long_out.binary_search(&from) {
                        self.long_out.insert(pos, from);
                        return Vec::new();
                    }
                }
                // No room (or duplicate): give the accepted slot back.
                vec![Outbound::new(from, Message::Unlink)]
            }
            Message::LinkReject => Vec::new(),
            Message::Unlink => {
                self.long_in.retain(|&x| x != from);
                self.long_out.retain(|&x| x != from);
                Vec::new()
            }
            Message::Query(token) => self.process_query(token),
            Message::QueryDone(report) => {
                self.events.push(ProtocolEvent::QueryCompleted(report));
                Vec::new()
            }
            Message::GossipPush { view } => {
                for p in view {
                    self.note_peer(p);
                }
                self.note_peer(from);
                vec![Outbound::new(
                    from,
                    Message::GossipPull {
                        view: self.view_sample(rng),
                    },
                )]
            }
            Message::GossipPull { view } => {
                for p in view {
                    self.note_peer(p);
                }
                self.note_peer(from);
                Vec::new()
            }
        }
    }

    /// Driver callback: a message this peer sent could not be delivered
    /// (dead or unknown destination). This is the uniform failure model
    /// across drivers — the DES and the actor runtime report it the same
    /// way, so recovery behaviour stays identical.
    pub fn on_delivery_failure(&mut self, to: Id, msg: Message) -> Vec<Outbound> {
        self.known.retain(|&x| x != to);
        match msg {
            Message::Query(mut token) => {
                // The probe was charged when sent; undo the advance, record
                // the corpse, and try the next candidate from here.
                token.hops = token.hops.saturating_sub(1);
                token.stack.pop();
                token.mark_dead(to);
                token.wasted += 1;
                self.process_query(token)
            }
            Message::WalkProbe(mut token) => {
                // A probe to a corpse is a rejected move: step consumed,
                // walk stays here.
                token.remaining = token.remaining.saturating_sub(1);
                if token.remaining == 0 {
                    vec![Outbound::new(
                        token.origin,
                        Message::WalkDone {
                            walk_id: token.walk_id,
                            sample: self.id,
                        },
                    )]
                } else {
                    vec![self.step_walk(token)]
                }
            }
            Message::LinkAccept => {
                // The requester died after we granted the slot: reclaim it.
                self.long_in.retain(|&x| x != to);
                Vec::new()
            }
            // Lost walks, joins, reports, gossip: nothing to recover.
            _ => Vec::new(),
        }
    }

    // --- join routing ------------------------------------------------------

    fn handle_join_request(&mut self, joiner: Id) -> Vec<Outbound> {
        if logic::owns(self.pred, self.id, joiner) {
            // Splice: the joiner takes over the head of my arc. Serving a
            // splice also makes a solo bootstrap peer part of the overlay.
            let old_pred = self.pred;
            self.pred = joiner;
            self.joined = true;
            self.note_peer(joiner);
            let mut succs = Vec::with_capacity(self.cfg.succ_len);
            succs.push(self.id);
            succs.extend_from_slice(&self.succs);
            succs.truncate(self.cfg.succ_len);
            return vec![Outbound::new(
                joiner,
                Message::JoinWelcome {
                    pred: old_pred,
                    succs,
                },
            )];
        }
        match self.best_step_toward(joiner, |_| false) {
            Some(next) => vec![Outbound::new(next, Message::JoinRequest { joiner })],
            // Unreachable on a consistent ring; drop rather than loop.
            None => Vec::new(),
        }
    }

    // --- MH sampling walks ---------------------------------------------------

    fn launch_walks(&mut self, walks: u32) -> Vec<Outbound> {
        if walks == 0 || self.degree() == 0 {
            return Vec::new();
        }
        let mut outs = Vec::with_capacity(walks as usize);
        let batch = self.batch.get_or_insert_with(WalkBatch::default);
        let mut launched = Vec::with_capacity(walks as usize);
        for _ in 0..walks {
            let walk_id = self.walk_counter;
            self.walk_counter += 1;
            batch.pending.push((walk_id, None));
            launched.push(walk_id);
        }
        for walk_id in launched {
            let token = WalkToken {
                walk_id,
                origin: self.id,
                remaining: self.cfg.walk_ttl.max(1),
                // lint:allow(rng-discipline, walk tokens root at the machine's own deterministic seed keyed by walk_id)
                rng: TokenRng::new(SeedTree::new(self.seed).child2(LBL_WALK, walk_id).seed()),
                holder_deg: 0,
            };
            outs.push(self.step_walk(token));
        }
        outs
    }

    /// Proposes the next walk move from this holder.
    fn step_walk(&self, mut token: WalkToken) -> Outbound {
        let table = self.neighbors();
        if table.is_empty() {
            return Outbound::new(
                token.origin,
                Message::WalkDone {
                    walk_id: token.walk_id,
                    sample: self.id,
                },
            );
        }
        let k = token.rng.index(table.len());
        token.holder_deg = table.len();
        Outbound::new(table[k], Message::WalkProbe(token))
    }

    fn record_walk_done(&mut self, walk_id: u64, sample: Id) -> Vec<Outbound> {
        let Some(batch) = self.batch.as_mut() else {
            return Vec::new();
        };
        if let Some(slot) = batch.pending.iter_mut().find(|(w, _)| *w == walk_id) {
            slot.1 = Some(sample);
        }
        if batch.pending.iter().any(|(_, s)| s.is_none()) {
            return Vec::new();
        }
        // All walks of the batch have landed: issue link requests in launch
        // order — a deterministic sequence, whatever order the WalkDone
        // messages arrived in.
        let Some(batch) = self.batch.take() else {
            // Checked non-empty above; a miss here means the machine's own
            // state went inconsistent — drop the batch, keep the thread.
            self.events.push(ProtocolEvent::Fault {
                peer: self.id,
                context: "walk batch vanished before settling",
            });
            return Vec::new();
        };
        let mut targets: Vec<Id> = Vec::new();
        for (_, sample) in &batch.pending {
            // Every slot landed (checked above); skip rather than unwrap so
            // an impossible None cannot poison the machine.
            let Some(s) = *sample else { continue };
            if s != self.id && !targets.contains(&s) && self.long_out.binary_search(&s).is_err() {
                targets.push(s);
            }
        }
        let room = self.cfg.max_long_out.saturating_sub(self.long_out.len());
        targets.truncate(room);
        self.events.push(ProtocolEvent::WalksSettled {
            peer: self.id,
            samples: targets.len(),
        });
        targets
            .into_iter()
            .map(|t| Outbound::new(t, Message::LinkRequest))
            .collect()
    }

    // --- greedy query routing -------------------------------------------------

    /// Advances a query token held at this peer: deliver, forward, or
    /// backtrack. Shares its progress ranking ([`logic::progress_toward`])
    /// and ownership test ([`logic::owns`]) with the simulator's router.
    fn process_query(&mut self, mut token: QueryToken) -> Vec<Outbound> {
        if logic::owns(self.pred, self.id, token.key) {
            return self.complete_query(token, true, Some(self.id));
        }
        let excluded = |t: &QueryToken, c: Id| t.is_excluded(c);
        if let Some(next) = self.best_step_toward(token.key, |c| excluded(&token, c)) {
            if token.budget == 0 {
                return self.complete_query(token, false, None);
            }
            token.budget -= 1;
            token.hops += 1;
            token.stack.push(self.id);
            return vec![Outbound::new(next, Message::Query(token))];
        }
        // Dead end: retreat along the forward path.
        token.mark_exhausted(self.id);
        token.backtracks += 1;
        token.wasted += 1;
        while let Some(prev) = token.stack.pop() {
            if token.is_excluded(prev) {
                continue;
            }
            if token.budget == 0 {
                return self.complete_query(token, false, None);
            }
            token.budget -= 1;
            return vec![Outbound::new(prev, Message::Query(token))];
        }
        self.complete_query(token, false, None)
    }

    /// The best next hop toward `key` from this peer's local tables: the
    /// neighbour with the smallest remaining clockwise distance, or the
    /// first successor whose arc covers the key (the final overshoot hop
    /// to the owner), skipping `exclude`d peers.
    fn best_step_toward(&self, key: Id, exclude: impl Fn(Id) -> bool) -> Option<Id> {
        let span = self.id.cw_dist(key);
        let mut best: Option<(u64, Id)> = None;
        for c in self.neighbors() {
            if exclude(c) {
                continue;
            }
            if let Some(p) = logic::progress_toward(c, key, span) {
                if best.map(|(bp, _)| p < bp).unwrap_or(true) {
                    best = Some((p, c));
                }
            }
        }
        if let Some((_, c)) = best {
            return Some(c);
        }
        // No neighbour lies on (self, key]: the owner sits just past the
        // key — the nearest successor whose arc covers it.
        self.succs
            .iter()
            .copied()
            .find(|&s| !exclude(s) && logic::owns(self.id, s, key))
    }

    fn complete_query(
        &mut self,
        token: QueryToken,
        success: bool,
        dest: Option<Id>,
    ) -> Vec<Outbound> {
        let report = QueryReport {
            qid: token.qid,
            origin: token.origin,
            key: token.key,
            success,
            hops: token.hops,
            wasted: token.wasted,
            backtracks: token.backtracks,
            dest,
        };
        if token.origin == self.id {
            self.events.push(ProtocolEvent::QueryCompleted(report));
            Vec::new()
        } else {
            vec![Outbound::new(token.origin, Message::QueryDone(report))]
        }
    }

    // --- gossip membership -----------------------------------------------------

    fn gossip_round(&mut self, rng: &mut dyn RngCore) -> Vec<Outbound> {
        if self.known.is_empty() {
            return Vec::new();
        }
        let fanout = self.cfg.gossip_fanout.min(self.known.len());
        let mut idxs: Vec<usize> = (0..self.known.len()).collect();
        // Partial Fisher–Yates for `fanout` distinct targets.
        for i in 0..fanout {
            // lint:allow(rng-discipline, gossip is the one driver-RNG activity by design — it never feeds a measured artifact)
            let j = i + (rng.next_u64() as usize) % (idxs.len() - i);
            idxs.swap(i, j);
        }
        let view = self.view_sample(rng);
        idxs[..fanout]
            .iter()
            .map(|&i| Outbound::new(self.known[i], Message::GossipPush { view: view.clone() }))
            .collect()
    }

    /// A bounded sample of the view (always includes this peer).
    fn view_sample(&self, rng: &mut dyn RngCore) -> Vec<Id> {
        let mut view = Vec::with_capacity(self.cfg.gossip_sample);
        view.push(self.id);
        if self.known.is_empty() {
            return view;
        }
        let want = self
            .cfg
            .gossip_sample
            .saturating_sub(1)
            .min(self.known.len());
        let mut idxs: Vec<usize> = (0..self.known.len()).collect();
        for i in 0..want {
            // lint:allow(rng-discipline, view sampling rides the gossip driver stream — never feeds a measured artifact)
            let j = i + (rng.next_u64() as usize) % (idxs.len() - i);
            idxs.swap(i, j);
        }
        view.extend(idxs[..want].iter().map(|&i| self.known[i]));
        view
    }

    /// Records `p` in the bounded membership view (ignores self).
    fn note_peer(&mut self, p: Id) {
        if p == self.id {
            return;
        }
        if let Err(pos) = self.known.binary_search(&p) {
            self.known.insert(pos, p);
            if self.known.len() > self.cfg.view_cap {
                // Deterministic trim: drop the clockwise-farthest entry.
                // (The view is non-empty here — we just inserted — so the
                // `if let` always takes; it exists to satisfy panic-policy.)
                if let Some(far) =
                    (0..self.known.len()).max_by_key(|&i| self.id.cw_dist(self.known[i]))
                {
                    self.known.remove(far);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A minimal in-test pump: synchronous message delivery until quiet.
    struct Pump {
        peers: BTreeMap<Id, PeerMachine>,
        queue: std::collections::VecDeque<(Id, Outbound)>,
        delivered: usize,
    }

    impl Pump {
        fn new(peers: Vec<PeerMachine>) -> Self {
            Pump {
                peers: peers.into_iter().map(|p| (p.id(), p)).collect(),
                queue: Default::default(),
                delivered: 0,
            }
        }

        fn command(&mut self, at: Id, cmd: Command) {
            let mut rng = SeedTree::new(0).rng();
            let outs = self.peers.get_mut(&at).unwrap().on_command(cmd, &mut rng);
            for o in outs {
                self.queue.push_back((at, o));
            }
            self.run();
        }

        fn run(&mut self) {
            let mut rng = SeedTree::new(1).rng();
            while let Some((from, out)) = self.queue.pop_front() {
                self.delivered += 1;
                assert!(self.delivered < 100_000, "message storm");
                let outs = if let Some(peer) = self.peers.get_mut(&out.to) {
                    peer.on_message(from, out.msg, &mut rng)
                } else {
                    self.peers
                        .get_mut(&from)
                        .unwrap()
                        .on_delivery_failure(out.to, out.msg)
                };
                let at = out.to;
                for o in outs {
                    // Failure replies originate at the original sender.
                    let src = if self.peers.contains_key(&at) {
                        at
                    } else {
                        from
                    };
                    self.queue.push_back((src, o));
                }
            }
        }
    }

    fn machines(ids: &[u64]) -> Vec<PeerMachine> {
        ids.iter()
            .map(|&i| PeerMachine::new(Id::new(i), 1000 + i, PeerConfig::default()))
            .collect()
    }

    #[test]
    fn serial_joins_build_a_consistent_ring() {
        let ids = [100u64, 900, 300, 700, 500, 42, 650];
        let mut pump = Pump::new(machines(&ids));
        let contact = Id::new(ids[0]);
        for &i in &ids[1..] {
            pump.command(Id::new(i), Command::Join { contact });
        }
        // Ring must be exactly the sorted id cycle.
        let mut sorted: Vec<Id> = ids.iter().map(|&i| Id::new(i)).collect();
        sorted.sort_unstable();
        for (k, &id) in sorted.iter().enumerate() {
            let m = &pump.peers[&id];
            let succ = sorted[(k + 1) % sorted.len()];
            let pred = sorted[(k + sorted.len() - 1) % sorted.len()];
            assert_eq!(m.succs()[0], succ, "succ of {id:?}");
            assert_eq!(m.pred(), pred, "pred of {id:?}");
            assert!(m.joined());
        }
    }

    #[test]
    fn walks_settle_and_install_links() {
        let ids = [10u64, 20, 30, 40, 50, 60, 70, 80];
        let mut pump = Pump::new(machines(&ids));
        let contact = Id::new(10);
        for &i in &ids[1..] {
            pump.command(Id::new(i), Command::Join { contact });
        }
        for &i in &ids {
            pump.command(Id::new(i), Command::BuildLinks { walks: 3 });
        }
        // Every out-link must be mirrored by the target's in-link.
        let snapshot: Vec<(Id, Vec<Id>)> = pump
            .peers
            .values()
            .map(|m| (m.id(), m.long_out().to_vec()))
            .collect();
        let mut total = 0;
        for (id, outs) in snapshot {
            for t in outs {
                total += 1;
                assert!(
                    pump.peers[&t].long_in().contains(&id),
                    "{t:?} missing in-link from {id:?}"
                );
            }
        }
        assert!(total > 0, "no long links formed");
        for m in pump.peers.values_mut() {
            let settled = m
                .drain_events()
                .iter()
                .any(|e| matches!(e, ProtocolEvent::WalksSettled { .. }));
            assert!(settled, "walk batch never settled");
        }
    }

    #[test]
    fn queries_resolve_to_ring_owners() {
        let ids = [100u64, 300, 500, 700, 900];
        let mut pump = Pump::new(machines(&ids));
        let contact = Id::new(100);
        for &i in &ids[1..] {
            pump.command(Id::new(i), Command::Join { contact });
        }
        // (key, owner): owner = first peer at-or-after the key, wrapping.
        let cases = [
            (150u64, 300u64),
            (300, 300),
            (901, 100),
            (50, 100),
            (699, 700),
        ];
        for (qid, (key, owner)) in cases.iter().enumerate() {
            let origin = Id::new(500);
            pump.command(
                origin,
                Command::StartQuery {
                    qid: qid as u64,
                    key: Id::new(*key),
                },
            );
            let events = pump.peers.get_mut(&origin).unwrap().drain_events();
            let report = events
                .iter()
                .find_map(|e| match e {
                    ProtocolEvent::QueryCompleted(r) if r.qid == qid as u64 => Some(r.clone()),
                    _ => None,
                })
                .expect("query completed");
            assert!(report.success, "query {qid} failed");
            assert_eq!(report.dest, Some(Id::new(*owner)), "key {key}");
        }
    }

    #[test]
    fn self_owned_query_costs_nothing() {
        let ids = [100u64, 200];
        let mut pump = Pump::new(machines(&ids));
        pump.command(
            Id::new(200),
            Command::Join {
                contact: Id::new(100),
            },
        );
        let origin = Id::new(200);
        pump.command(
            origin,
            Command::StartQuery {
                qid: 9,
                key: Id::new(150),
            },
        );
        let events = pump.peers.get_mut(&origin).unwrap().drain_events();
        let r = events
            .iter()
            .find_map(|e| match e {
                ProtocolEvent::QueryCompleted(r) => Some(r.clone()),
                _ => None,
            })
            .expect("completed");
        assert!(r.success);
        assert_eq!(r.hops, 0);
        assert_eq!(r.cost(), 0);
    }

    #[test]
    fn gossip_spreads_membership() {
        let ids = [1u64, 2, 3, 4, 5, 6];
        let mut pump = Pump::new(machines(&ids));
        let contact = Id::new(1);
        for &i in &ids[1..] {
            pump.command(Id::new(i), Command::Join { contact });
        }
        for _ in 0..6 {
            for &i in &ids {
                pump.command(Id::new(i), Command::GossipTick);
            }
        }
        for m in pump.peers.values() {
            assert!(
                m.known().len() >= ids.len() - 2,
                "{:?} knows only {:?}",
                m.id(),
                m.known()
            );
        }
    }

    #[test]
    fn dead_destination_querying_backtracks_or_fails_cleanly() {
        // Build a 4-ring, then delete a machine outright; queries routed
        // through the hole must still terminate with a report.
        let ids = [100u64, 200, 300, 400];
        let mut pump = Pump::new(machines(&ids));
        for &i in &ids[1..] {
            pump.command(
                Id::new(i),
                Command::Join {
                    contact: Id::new(100),
                },
            );
        }
        pump.peers.remove(&Id::new(300));
        let origin = Id::new(100);
        pump.command(
            origin,
            Command::StartQuery {
                qid: 1,
                key: Id::new(250),
            },
        );
        let events = pump.peers.get_mut(&origin).unwrap().drain_events();
        let r = events
            .iter()
            .find_map(|e| match e {
                ProtocolEvent::QueryCompleted(r) => Some(r.clone()),
                _ => None,
            })
            .expect("query must terminate despite the corpse");
        assert!(r.wasted > 0, "corpse probe must be charged");
    }

    #[test]
    fn rewire_dissolves_and_rebuilds_long_links() {
        let ids = [10u64, 20, 30, 40, 50, 60];
        let mut pump = Pump::new(machines(&ids));
        for &i in &ids[1..] {
            pump.command(
                Id::new(i),
                Command::Join {
                    contact: Id::new(10),
                },
            );
        }
        pump.command(Id::new(10), Command::BuildLinks { walks: 2 });
        let before = pump.peers[&Id::new(10)].long_out().to_vec();
        pump.command(Id::new(10), Command::Rewire { walks: 2 });
        let after = pump.peers[&Id::new(10)].long_out().to_vec();
        // Old partners must have dropped the in-link unless re-chosen.
        for t in before {
            if !after.contains(&t) {
                assert!(!pump.peers[&t].long_in().contains(&Id::new(10)));
            }
        }
    }
}
