//! Deterministic fault injection: the seam both drivers consult.
//!
//! A [`FaultPlan`] is a seeded, per-edge loss/delay/duplication policy.
//! Both drivers call [`FaultPlan::decide`] at their single routing point
//! (the DES's `enqueue_all`, the runtime's `Shared::send`), so the same
//! plan produces the same fate for the same message in both worlds —
//! which is what keeps the cross-driver equivalence property alive
//! *under* faults.
//!
//! Determinism without counters: a decision is a pure function of
//! `(plan seed, from, to, message content)` via
//! [`Message::instance_key`]. A per-send counter would be ordered by
//! scheduling in the threaded runtime and diverge from the DES; content
//! keying is scheduling-blind. The flip side — a byte-identical resend
//! would meet the identical fate — is defused by the protocol layer:
//! retries carry `attempt` counters and salted nonces, so every retry
//! rolls fresh dice.
//!
//! Heterogeneity: each directed edge gets its own delay ceiling drawn
//! from the plan's edge stream (the paper's target environment is
//! heterogeneous links, not a uniform loss cloud).

use crate::message::Message;
use crate::token::TokenRng;
use oscar_types::{mix64, Id};

/// The fate of one message send, drawn deterministically from the plan.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultDecision {
    /// Silently discard the message.
    pub drop: bool,
    /// Deliver a second copy (after the first, one extra tick later).
    pub duplicate: bool,
    /// Extra virtual-time delivery latency in ticks (DES only; the
    /// threaded runtime reorders naturally and ignores it).
    pub extra_delay: u64,
}

impl FaultDecision {
    /// The reliable fate: deliver once, on time.
    pub const DELIVER: FaultDecision = FaultDecision {
        drop: false,
        duplicate: false,
        extra_delay: 0,
    };
}

/// A seeded, per-edge fault policy shared by both protocol drivers.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_prob: f64,
    dup_prob: f64,
    max_delay: u64,
    blackhole: bool,
}

impl FaultPlan {
    /// The default plan: deliver everything exactly once, instantly, and
    /// bounce sends to missing peers back to the sender. Every committed
    /// seeded artifact is generated under this plan.
    pub fn reliable() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            max_delay: 0,
            blackhole: false,
        }
    }

    /// A plan rooted at its own seed (faults get their own stream family,
    /// independent of the deployment seed).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::reliable()
        }
    }

    /// Sets the per-message drop probability (clamped to `[0, 1]`).
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-message duplication probability (clamped to `[0, 1]`).
    pub fn with_duplication(mut self, p: f64) -> Self {
        self.dup_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the deployment-wide delay-jitter ceiling in extra ticks; each
    /// directed edge draws its own ceiling in `0..=ticks` (heterogeneous
    /// links), and each message its delay under the edge's ceiling.
    pub fn with_delay_jitter(mut self, ticks: u64) -> Self {
        self.max_delay = ticks;
        self
    }

    /// When set, a send to a missing peer vanishes silently instead of
    /// bouncing `on_delivery_failure` at the sender — the realistic crash
    /// model that timeouts (not instant bounces) must recover from.
    pub fn with_blackhole(mut self, on: bool) -> Self {
        self.blackhole = on;
        self
    }

    /// True iff this plan never perturbs a delivery (the hot path skips
    /// all key hashing in that case).
    pub fn is_reliable(&self) -> bool {
        self.drop_prob == 0.0 && self.dup_prob == 0.0 && self.max_delay == 0
    }

    /// True iff sends to missing peers vanish instead of bouncing.
    pub fn blackhole_on_crash(&self) -> bool {
        self.blackhole
    }

    /// The fate of sending `msg` from `from` to `to`. Pure: same plan,
    /// same edge, same content — same fate, in every driver, every run.
    pub fn decide(&self, from: Id, to: Id, msg: &Message) -> FaultDecision {
        if self.is_reliable() || from == to {
            // Self-sends model local work (e.g. a walk finishing at its
            // origin); no link is crossed, so no link faults apply.
            return FaultDecision::DELIVER;
        }
        let edge = fold(fold(mix64(self.seed), from.raw()), to.raw());
        let mut rng = TokenRng::new(fold(edge, msg.instance_key()));
        let drop = rng.unit_f64() < self.drop_prob;
        if drop {
            return FaultDecision {
                drop: true,
                duplicate: false,
                extra_delay: 0,
            };
        }
        let duplicate = rng.unit_f64() < self.dup_prob;
        let extra_delay = if self.max_delay == 0 {
            0
        } else {
            // Per-edge ceiling first (a property of the link), then the
            // per-message draw under it.
            let ceiling = TokenRng::new(edge).index(self.max_delay as usize + 1) as u64;
            if ceiling == 0 {
                0
            } else {
                rng.index(ceiling as usize + 1) as u64
            }
        };
        FaultDecision {
            drop,
            duplicate,
            extra_delay,
        }
    }
}

#[inline]
fn fold(acc: u64, v: u64) -> u64 {
    mix64(acc ^ v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(nonce: u64) -> Message {
        Message::LinkRequest { nonce }
    }

    #[test]
    fn reliable_plan_always_delivers() {
        let plan = FaultPlan::reliable();
        assert!(plan.is_reliable());
        for n in 0..64 {
            assert_eq!(
                plan.decide(Id::new(1), Id::new(2), &msg(n)),
                FaultDecision::DELIVER
            );
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_plan_edge_and_content() {
        let a = FaultPlan::new(77)
            .with_drop(0.3)
            .with_duplication(0.2)
            .with_delay_jitter(4);
        let b = a.clone();
        for n in 0..256 {
            let d1 = a.decide(Id::new(10), Id::new(20), &msg(n));
            let d2 = b.decide(Id::new(10), Id::new(20), &msg(n));
            assert_eq!(d1, d2, "replay diverged at {n}");
        }
    }

    #[test]
    fn distinct_content_decorrelates_fates() {
        // A plan that drops ~half of everything must not drop the same
        // half for a salted resend: count fates flipping across nonces.
        let plan = FaultPlan::new(5).with_drop(0.5);
        let mut dropped = 0;
        for n in 0..1000 {
            if plan.decide(Id::new(1), Id::new(2), &msg(n)).drop {
                dropped += 1;
            }
        }
        assert!((350..650).contains(&dropped), "drop rate skewed: {dropped}");
    }

    #[test]
    fn edges_get_heterogeneous_delay_ceilings() {
        let plan = FaultPlan::new(9).with_delay_jitter(6);
        let mut maxima = std::collections::BTreeSet::new();
        for e in 0..32u64 {
            let mut edge_max = 0;
            for n in 0..64 {
                let d = plan.decide(Id::new(1), Id::new(100 + e), &msg(n));
                edge_max = edge_max.max(d.extra_delay);
            }
            maxima.insert(edge_max);
        }
        assert!(maxima.len() > 2, "all edges share one ceiling: {maxima:?}");
    }

    #[test]
    fn self_sends_are_exempt() {
        let plan = FaultPlan::new(3).with_drop(1.0);
        assert_eq!(
            plan.decide(Id::new(7), Id::new(7), &msg(1)),
            FaultDecision::DELIVER
        );
    }
}
