//! Tokens that travel inside protocol messages.
//!
//! A walk or a query is a *token* forwarded peer-to-peer; everything the
//! in-flight activity needs — including its random stream — rides in the
//! token itself. That makes the realised randomness a pure function of
//! the token's seed, independent of which peer, thread, or driver
//! advances it: the determinism boundary of the whole protocol layer.

use oscar_types::{mix64, Id};

/// A self-contained deterministic random stream carried by a token.
///
/// A SplitMix64 sequence (same mixer as [`oscar_types::SeedTree`]): the
/// state advances by the golden-ratio increment and each output is the
/// finalised state. Scheduling, thread placement, and driver choice
/// cannot perturb it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenRng {
    state: u64,
}

impl TokenRng {
    /// A stream derived from `seed` (pre-mixed, so low-entropy seeds —
    /// peer ids, walk counters — are fine).
    pub fn new(seed: u64) -> Self {
        TokenRng { state: mix64(seed) }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform draw on `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        // lint:allow(rng-discipline, TokenRng IS the token-carried stream — these are its own primitives)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `0..n` (fixed-point scaling; `n` is a neighbour
    /// table size, so the 2^-64 bias is irrelevant). Panics when `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        // lint:allow(rng-discipline, TokenRng IS the token-carried stream — these are its own primitives)
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// The current stream position, without advancing it. Folded into
    /// message instance keys so that every step of a forwarded token is
    /// content-distinguishable (duplicate suppression, fault decisions).
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.state
    }
}

/// A Metropolis–Hastings sampling walk in flight.
///
/// The walk visits peers along existing links; after `remaining` steps
/// the holder reports itself to `origin` as an (approximately) uniform
/// sample. `holder_deg` carries the sending holder's degree to the
/// probed candidate, which applies the MH acceptance rule locally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalkToken {
    /// Origin-unique walk identifier.
    pub walk_id: u64,
    /// Peer that launched the walk and collects the sample.
    pub origin: Id,
    /// Steps left; every probe (accepted or rejected) consumes one.
    pub remaining: u32,
    /// The walk's own random stream.
    pub rng: TokenRng,
    /// Degree of the holder that sent the current probe.
    pub holder_deg: usize,
    /// Which launch of this walk the token belongs to (0 = first try;
    /// retries after a timeout re-launch with a fresh derived stream).
    pub attempt: u32,
}

/// A greedy-routed query in flight.
///
/// Mirrors the simulator's observed-routing bookkeeping, but distributed:
/// each field is knowledge the query itself has gathered, never a global
/// snapshot. `known_dead` and `exhausted` are small sorted vectors (query
/// paths are O(log n), so linear/binary ops on them are cheap).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryToken {
    /// Harness-assigned query identifier.
    pub qid: u64,
    /// Peer that issued the query and receives the report.
    pub origin: Id,
    /// The key being resolved (owner = first live peer at-or-after it).
    pub key: Id,
    /// Useful forward hops taken.
    pub hops: u32,
    /// Messages that did not advance the query (dead probes, backtracks).
    pub wasted: u32,
    /// Times the query retreated from a dead end.
    pub backtracks: u32,
    /// Remaining message budget; at zero the query fails.
    pub budget: u32,
    /// Which issue of this query the token belongs to (0 = first try;
    /// a timeout at the origin re-issues with a fresh token).
    pub attempt: u32,
    /// Peers discovered dead (delivery failures), sorted.
    pub known_dead: Vec<Id>,
    /// Peers whose candidate sets were exhausted, sorted.
    pub exhausted: Vec<Id>,
    /// Return path for backtracking.
    pub stack: Vec<Id>,
}

impl QueryToken {
    /// A fresh token for `key`, issued by `origin` with a message budget.
    pub fn new(qid: u64, origin: Id, key: Id, budget: u32) -> Self {
        QueryToken {
            qid,
            origin,
            key,
            hops: 0,
            wasted: 0,
            backtracks: 0,
            budget,
            attempt: 0,
            known_dead: Vec::new(),
            exhausted: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// True iff `id` is recorded dead or exhausted.
    pub fn is_excluded(&self, id: Id) -> bool {
        self.known_dead.binary_search(&id).is_ok() || self.exhausted.binary_search(&id).is_ok()
    }

    /// Records a dead peer (idempotent).
    pub fn mark_dead(&mut self, id: Id) {
        if let Err(pos) = self.known_dead.binary_search(&id) {
            self.known_dead.insert(pos, id);
        }
    }

    /// Records an exhausted peer (idempotent).
    pub fn mark_exhausted(&mut self, id: Id) {
        if let Err(pos) = self.exhausted.binary_search(&id) {
            self.exhausted.insert(pos, id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_rng_is_deterministic_and_spread() {
        let mut a = TokenRng::new(42);
        let mut b = TokenRng::new(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            seen.insert(x);
        }
        assert_eq!(seen.len(), 1000, "stream must not cycle early");
    }

    #[test]
    fn token_rng_unit_and_index_bounds() {
        let mut r = TokenRng::new(7);
        let mut mean = 0.0;
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
            mean += u;
        }
        mean /= 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        for n in 1..40 {
            assert!(r.index(n) < n);
        }
    }

    #[test]
    fn token_rng_is_schedule_independent() {
        // Interleaving draws with clones (as different peers advancing a
        // forwarded token would) yields the same realised sequence.
        let mut direct = TokenRng::new(9);
        let direct_seq: Vec<u64> = (0..10).map(|_| direct.next_u64()).collect();
        let mut hop = TokenRng::new(9);
        let mut hopped = Vec::new();
        for _ in 0..10 {
            let mut moved = hop.clone(); // token serialised to the next peer
            hopped.push(moved.next_u64());
            hop = moved;
        }
        assert_eq!(direct_seq, hopped);
    }

    #[test]
    fn query_token_exclusion_sets_stay_sorted() {
        let mut t = QueryToken::new(1, Id::new(0), Id::new(10), 64);
        for raw in [5u64, 1, 9, 5, 3] {
            t.mark_dead(Id::new(raw));
        }
        assert_eq!(t.known_dead.len(), 4);
        assert!(t.known_dead.windows(2).all(|w| w[0] < w[1]));
        assert!(t.is_excluded(Id::new(9)));
        t.mark_exhausted(Id::new(2));
        assert!(t.is_excluded(Id::new(2)));
        assert!(!t.is_excluded(Id::new(4)));
    }
}
