//! Pure decision kernels shared by every driver.
//!
//! These functions are the protocol's *decisions* stripped of any
//! transport: the Metropolis–Hastings acceptance rule of the sampling
//! walk, the clockwise-progress ranking of greedy routing, and ring
//! ownership. The discrete-event simulator calls them from its global
//! walk/routing loops (`oscar-sim`), and the message-driven
//! [`PeerMachine`](crate::PeerMachine) calls the very same code from its
//! per-peer handlers — one implementation, two worlds.
//!
//! Every function here is side-effect free and consumes randomness only
//! through explicitly passed draws, so callers keep full control of
//! their RNG streams (the simulator's byte-identical baselines depend
//! on that).

use oscar_types::Id;
use rand::Rng;

/// Uniform proposal: an index into the current peer's neighbour table.
///
/// Exactly one `gen_range(0..n)` draw — the first half of an MH step.
/// Panics when `n == 0` (callers must handle isolated peers before
/// proposing).
#[inline]
pub fn uniform_index<R: Rng + ?Sized>(n: usize, rng: &mut R) -> usize {
    // lint:allow(rng-discipline, shared MH kernel — the caller passes its own stream and owns the draw order)
    rng.gen_range(0..n)
}

/// Metropolis–Hastings acceptance for a degree-corrected uniform walk.
///
/// A move from a peer of degree `cur_deg` to a candidate of degree
/// `cand_deg` is accepted with probability `min(1, cur_deg/cand_deg)`,
/// which makes the walk's stationary distribution uniform over peers
/// instead of degree-biased.
///
/// The unit draw is passed lazily: when the candidate is isolated
/// (`cand_deg == 0`) the rule short-circuits to "accept" *without
/// consuming randomness*, which existing simulator streams rely on.
/// (An accepted move onto an isolated candidate is still a non-move —
/// the walk cannot continue from a degree-0 peer — so callers treat
/// `cand_deg == 0` as "stay put, step consumed".)
#[inline]
pub fn mh_accept(cur_deg: usize, cand_deg: usize, unit_draw: impl FnOnce() -> f64) -> bool {
    cand_deg == 0 || unit_draw() < cur_deg as f64 / cand_deg as f64
}

/// Greedy clockwise progress of `cand` toward `target`.
///
/// `cur_potential` is the current position's clockwise distance to the
/// target. Returns the candidate's remaining potential when it makes
/// strict progress (`Some`, smaller is better), `None` otherwise.
///
/// The simulator ranks candidates against the oracle *owner* of a key;
/// the distributed peer machine, which has no oracle, ranks against the
/// *key itself* — both are this one comparison, because "strictly
/// smaller clockwise distance to the target" is exactly "lies on the
/// arc `(current, target]`".
#[inline]
pub fn progress_toward(cand: Id, target: Id, cur_potential: u64) -> Option<u64> {
    let p = cand.cw_dist(target);
    if p < cur_potential {
        Some(p)
    } else {
        None
    }
}

/// Ring ownership: does `peer` (whose predecessor is `pred`) own `key`?
///
/// A peer owns the half-open arc `(pred, peer]`; a peer that is its own
/// predecessor is alone on the ring and owns everything.
#[inline]
pub fn owns(pred: Id, peer: Id, key: Id) -> bool {
    if pred == peer {
        return true;
    }
    let d = pred.cw_dist(key);
    d != 0 && d <= pred.cw_dist(peer)
}

/// Is `cand` an admissible new long-link target for `me`?
///
/// A candidate is rejected when it is the peer itself, already among the
/// targets chosen in this selection round, or already linked (callers
/// pass their sorted out-link table). Liveness is *not* checked here:
/// the oracle-backed simulator filters corpses before calling, and the
/// distributed machine discovers death the hard way (bounce/timeout).
#[inline]
pub fn admits_link(me: Id, cand: Id, chosen_so_far: &[Id], existing_sorted: &[Id]) -> bool {
    cand != me && !chosen_so_far.contains(&cand) && existing_sorted.binary_search(&cand).is_err()
}

/// Fold one candidate into a least-loaded selection.
///
/// Strictly-smaller load wins; ties keep the earlier candidate, so the
/// result depends only on candidate order — the property the simulator's
/// probe loops and their byte-identical baselines rely on.
#[inline]
pub fn pick_least_loaded(best: Option<(usize, Id)>, load: usize, cand: Id) -> Option<(usize, Id)> {
    match best {
        Some((b, _)) if b <= load => best,
        _ => Some((load, cand)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_types::SeedTree;

    #[test]
    fn mh_accept_matches_ratio() {
        // cur 4, cand 2: ratio 2.0 -> always accept
        assert!(mh_accept(4, 2, || 0.999));
        // cur 2, cand 4: ratio 0.5 -> accept iff u < 0.5
        assert!(mh_accept(2, 4, || 0.49));
        assert!(!mh_accept(2, 4, || 0.51));
    }

    #[test]
    fn mh_accept_isolated_candidate_consumes_no_draw() {
        // The closure must not run when cand_deg == 0.
        let accepted = mh_accept(3, 0, || panic!("draw consumed for isolated candidate"));
        assert!(accepted);
    }

    #[test]
    fn uniform_index_is_in_range_and_deterministic() {
        let mut a = SeedTree::new(7).rng();
        let mut b = SeedTree::new(7).rng();
        for n in 1..50usize {
            let ka = uniform_index(n, &mut a);
            assert_eq!(ka, uniform_index(n, &mut b));
            assert!(ka < n);
        }
    }

    #[test]
    fn progress_requires_strictly_smaller_potential() {
        let cur = Id::new(100);
        let target = Id::new(500);
        let pot = cur.cw_dist(target);
        // Candidate between current and target: progress.
        assert_eq!(progress_toward(Id::new(300), target, pot), Some(200));
        // The target itself: maximal progress.
        assert_eq!(progress_toward(Id::new(500), target, pot), Some(0));
        // The current position: no progress.
        assert_eq!(progress_toward(cur, target, pot), None);
        // Behind the current position (wraps past the target): none.
        assert_eq!(progress_toward(Id::new(600), target, pot), None);
        assert_eq!(progress_toward(Id::new(50), target, pot), None);
    }

    #[test]
    fn progress_is_arc_membership() {
        // Some(p) iff cand lies on (cur, target], for wrapping arcs too.
        let cur = Id::new(u64::MAX - 10);
        let target = Id::new(20);
        let pot = cur.cw_dist(target); // 31
        assert_eq!(progress_toward(Id::new(5), target, pot), Some(15));
        assert_eq!(progress_toward(Id::new(u64::MAX), target, pot), Some(21));
        assert_eq!(progress_toward(Id::new(21), target, pot), None);
    }

    #[test]
    fn ownership_covers_the_predecessor_arc() {
        let pred = Id::new(100);
        let peer = Id::new(200);
        assert!(owns(pred, peer, Id::new(150)));
        assert!(owns(pred, peer, Id::new(200))); // exact hit
        assert!(!owns(pred, peer, Id::new(100))); // pred owns its own id
        assert!(!owns(pred, peer, Id::new(250)));
        assert!(!owns(pred, peer, Id::new(50)));
        // Wrapping arc (pred > peer).
        assert!(owns(peer, pred, Id::new(250)));
        assert!(owns(peer, pred, Id::new(50)));
        assert!(!owns(peer, pred, Id::new(150)));
        // Sole peer owns everything, including its own id.
        assert!(owns(peer, peer, Id::new(0)));
        assert!(owns(peer, peer, peer));
    }

    #[test]
    fn link_admission_rejects_self_dupes_and_existing() {
        let me = Id::new(10);
        let chosen = [Id::new(20)];
        let existing = [Id::new(5), Id::new(30)]; // sorted
        assert!(!admits_link(me, me, &chosen, &existing));
        assert!(!admits_link(me, Id::new(20), &chosen, &existing));
        assert!(!admits_link(me, Id::new(30), &chosen, &existing));
        assert!(admits_link(me, Id::new(40), &chosen, &existing));
        assert!(admits_link(me, Id::new(40), &[], &[]));
    }

    #[test]
    fn least_loaded_is_strict_and_first_wins_ties() {
        let a = Id::new(1);
        let b = Id::new(2);
        let c = Id::new(3);
        let mut best = None;
        best = pick_least_loaded(best, 5, a);
        assert_eq!(best, Some((5, a)));
        // Equal load does not displace the incumbent.
        best = pick_least_loaded(best, 5, b);
        assert_eq!(best, Some((5, a)));
        // Strictly smaller load does.
        best = pick_least_loaded(best, 4, c);
        assert_eq!(best, Some((4, c)));
        best = pick_least_loaded(best, 9, a);
        assert_eq!(best, Some((4, c)));
    }
}
