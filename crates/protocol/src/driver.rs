//! The driver abstraction: what a world must offer to host machines.
//!
//! Both execution worlds — the discrete-event simulator in `oscar-sim`
//! and the threaded actor runtime in `oscar-runtime` — move the same
//! [`PeerMachine`](crate::PeerMachine) envelopes; they differ only in
//! *when* (virtual FIFO rounds vs real threads) and *where* (one queue
//! vs one mailbox per actor). This trait captures the surface the
//! machine-backend churn engine needs, so one generic engine drives
//! Poisson join/crash/depart through either world and produces the same
//! window statistics.
//!
//! The trait lives here (not in a driver crate) so both worlds can
//! implement it without a dependency cycle: `oscar-sim` and
//! `oscar-runtime` already depend on `oscar-protocol`.

use crate::message::{Command, ProtocolEvent};
use oscar_types::Id;

/// A world that can host peer machines and move their envelopes.
///
/// Time model: drivers expose a monotone *round* counter — the DES
/// equates it with timer rounds on its virtual clock, the threaded
/// runtime ticks it at quiescent points. [`ProtocolDriver::advance_to`]
/// runs message delivery and timer ticks until the counter reaches the
/// target, which is what lets one churn engine schedule Poisson events
/// on either clock.
pub trait ProtocolDriver {
    /// Adds a fresh, unjoined machine for `id`. No-op if it exists.
    fn spawn_peer(&mut self, id: Id);

    /// Removes `id` abruptly (a crash): undelivered and future messages
    /// to it bounce back to their senders as delivery failures.
    fn remove_peer(&mut self, id: Id);

    /// Enqueues a local command to `id`'s machine.
    fn inject(&mut self, id: Id, cmd: Command);

    /// Delivers messages and fires timers until every machine is idle or
    /// `max_rounds` timer rounds have elapsed. Returns the number of
    /// timer rounds consumed.
    fn settle(&mut self, max_rounds: u64) -> u64;

    /// Advances the round counter to at least `round`, delivering
    /// messages and firing due timers along the way.
    fn advance_to(&mut self, round: u64);

    /// The current round counter.
    fn round(&self) -> u64;

    /// Ids of all live machines, sorted.
    fn peer_ids(&self) -> Vec<Id>;

    /// Drains protocol events accumulated across all machines since the
    /// last drain, in a deterministic order.
    fn drain_events(&mut self) -> Vec<ProtocolEvent>;

    /// Total messages sent so far (the maintenance-traffic meter).
    fn sent(&self) -> u64;

    /// [`ProtocolEvent::Fault`] occurrences observed so far. Unlike
    /// drained events this is a lifetime counter: harnesses gate runs on
    /// it staying zero.
    fn fault_count(&self) -> u64;
}
