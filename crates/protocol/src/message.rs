//! The protocol's message taxonomy and driver-facing envelopes.
//!
//! A [`PeerMachine`](crate::PeerMachine) communicates with the world
//! exclusively through these types: it receives a [`Message`] (or a local
//! [`Command`] from its driver) and returns [`Outbound`] messages plus
//! locally observable [`ProtocolEvent`]s. Drivers — the discrete-event
//! simulator and the threaded actor runtime — only move envelopes; they
//! never inspect or mutate peer state.

use crate::token::{QueryToken, WalkToken};
use oscar_types::{mix64, Id};

/// A protocol message between two peers.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    // --- ring membership -------------------------------------------------
    /// Routed greedily toward `joiner`'s position; the owner splices.
    JoinRequest {
        /// The joining peer (also the routing key).
        joiner: Id,
        /// Which try this is (0 = first; bumped by timeout retries so a
        /// retried request is content-distinct from the original).
        attempt: u32,
    },
    /// Owner → joiner: your predecessor and successor list.
    JoinWelcome {
        /// The joiner's new predecessor (the owner's old one).
        pred: Id,
        /// The joiner's successor list, nearest first (head = the owner).
        succs: Vec<Id>,
        /// Echo of the request's attempt (keeps retried welcomes
        /// content-distinct under deterministic fault decisions).
        attempt: u32,
    },
    /// Joiner → its predecessor: "your immediate successor is now me".
    NewSuccessor {
        /// The new successor (the joiner).
        succ: Id,
    },

    // --- Metropolis–Hastings sampling walk -------------------------------
    /// Holder → candidate: one walk step proposal.
    WalkProbe(WalkToken),
    /// Candidate → holder: proposal rejected, walk stays (step consumed).
    WalkReject(WalkToken),
    /// Final holder → origin: the walk's sample.
    WalkDone {
        /// Which of the origin's walks finished.
        walk_id: u64,
        /// The sampled peer.
        sample: Id,
        /// Which launch of the walk produced the sample.
        attempt: u32,
    },

    // --- long links -------------------------------------------------------
    /// Origin → sampled peer: request a long link.
    LinkRequest {
        /// Deterministic handshake nonce, echoed by the reply. Retries
        /// salt it so a retried request draws a fresh fault decision.
        nonce: u64,
    },
    /// Target accepted; the requester installs the out-link.
    LinkAccept {
        /// Echo of the request nonce.
        nonce: u64,
    },
    /// Target at capacity; the requester drops the sample.
    LinkReject {
        /// Echo of the request nonce.
        nonce: u64,
    },
    /// Either endpoint dissolves the link (rewire, shutdown).
    Unlink,

    // --- queries ----------------------------------------------------------
    /// A greedy-routed query token, forwarded toward its key.
    Query(QueryToken),
    /// Final peer → origin: the query's outcome.
    QueryDone(QueryReport),

    // --- gossip membership -------------------------------------------------
    /// Push a sample of the sender's membership view.
    GossipPush {
        /// Peer ids known to the sender (a bounded sample).
        view: Vec<Id>,
    },
    /// Reply to a push with the receiver's own sample (one round, no echo).
    GossipPull {
        /// Peer ids known to the replier (a bounded sample).
        view: Vec<Id>,
    },

    // --- failure detection and ring repair ---------------------------------
    /// Ring-liveness probe to a predecessor or successor. Detection is
    /// timer-table-driven: the sender arms a probe deadline and declares
    /// the target dead only after the retry budget drains without a pong.
    Ping {
        /// Deterministic probe nonce (salted per retry and per probe
        /// epoch so every probe rolls fresh fault dice).
        nonce: u64,
    },
    /// Probe reply; piggybacks the responder's successor list so every
    /// probe round doubles as Chord-style successor-list stabilisation.
    Pong {
        /// Echo of the probe nonce.
        nonce: u64,
        /// The responder, then its successors, truncated (same shape as
        /// a welcome's successor list).
        succs: Vec<Id>,
    },
    /// Graceful departure announcement to ring neighbours: the leaver
    /// hands over its predecessor and successor knowledge so receivers
    /// splice without a detection delay.
    Leaving {
        /// The leaver's ring predecessor.
        pred: Id,
        /// The leaver's successor list, nearest first.
        succs: Vec<Id>,
    },
    /// Sender → its (believed) immediate successor: "I am your live
    /// predecessor". Accepted when the sender is closer than the current
    /// predecessor or the current predecessor has been declared dead.
    PredUpdate,
}

/// Stable mix64 fold (NOT `std::hash` — instance keys feed committed
/// seeded artifacts and must never drift across toolchains).
#[inline]
fn fold(acc: u64, v: u64) -> u64 {
    mix64(acc ^ v)
}

fn fold_walk(tag: u64, t: &WalkToken) -> u64 {
    let mut acc = fold(tag, t.walk_id);
    acc = fold(acc, t.origin.raw());
    acc = fold(acc, t.remaining as u64);
    acc = fold(acc, t.attempt as u64);
    fold(acc, t.rng.fingerprint())
}

impl Message {
    /// A content-derived key identifying this *instance* of the message.
    ///
    /// Two properties the protocol relies on:
    ///
    /// * every step of a forwarded token yields a distinct key (walk
    ///   tokens change `remaining`/rng state per step, query tokens burn
    ///   budget per send), so duplicate *deliveries* of one send are
    ///   distinguishable from consecutive legitimate sends;
    /// * a timeout retry is content-distinct from the original (`attempt`
    ///   counters, salted link nonces), so a deterministic per-content
    ///   fault decision cannot doom every retry to the original's fate.
    ///
    /// `Unlink` is the one content-constant message: its copies on an
    /// edge share a fate under fault injection, which is acceptable — a
    /// lost unlink only leaves a bounded stale in-link behind.
    pub fn instance_key(&self) -> u64 {
        match self {
            Message::JoinRequest { joiner, attempt } => {
                fold(fold(0x01, joiner.raw()), *attempt as u64)
            }
            Message::JoinWelcome {
                pred,
                succs,
                attempt,
            } => {
                let mut acc = fold(0x02, pred.raw());
                for s in succs {
                    acc = fold(acc, s.raw());
                }
                fold(acc, *attempt as u64)
            }
            Message::NewSuccessor { succ } => fold(0x03, succ.raw()),
            Message::WalkProbe(t) => fold_walk(0x04, t),
            Message::WalkReject(t) => fold_walk(0x05, t),
            Message::WalkDone {
                walk_id,
                sample,
                attempt,
            } => fold(fold(fold(0x06, *walk_id), sample.raw()), *attempt as u64),
            Message::LinkRequest { nonce } => fold(0x07, *nonce),
            Message::LinkAccept { nonce } => fold(0x08, *nonce),
            Message::LinkReject { nonce } => fold(0x09, *nonce),
            Message::Unlink => mix64(0x0A),
            Message::Query(t) => {
                let mut acc = fold(0x0B, t.qid);
                acc = fold(acc, t.origin.raw());
                acc = fold(acc, t.attempt as u64);
                acc = fold(acc, t.budget as u64);
                fold(acc, (t.hops as u64) ^ ((t.wasted as u64) << 32))
            }
            Message::QueryDone(r) => {
                let mut acc = fold(0x0C, r.qid);
                acc = fold(acc, r.origin.raw());
                acc = fold(acc, r.attempt as u64);
                acc = fold(acc, (r.hops as u64) ^ ((r.wasted as u64) << 32));
                fold(acc, r.success as u64)
            }
            Message::GossipPush { view } => view.iter().fold(mix64(0x0D), |a, p| fold(a, p.raw())),
            Message::GossipPull { view } => view.iter().fold(mix64(0x0E), |a, p| fold(a, p.raw())),
            Message::Ping { nonce } => fold(0x0F, *nonce),
            Message::Pong { nonce, succs } => succs
                .iter()
                .fold(fold(0x10, *nonce), |a, p| fold(a, p.raw())),
            Message::Leaving { pred, succs } => succs
                .iter()
                .fold(fold(0x11, pred.raw()), |a, p| fold(a, p.raw())),
            Message::PredUpdate => mix64(0x12),
        }
    }

    /// The dedup key, for messages where a duplicated delivery would
    /// otherwise double-advance in-flight state (token steps and their
    /// completions). Everything else is handled idempotently by the
    /// machine and needs no suppression.
    pub fn dedup_key(&self) -> Option<u64> {
        match self {
            Message::WalkProbe(_)
            | Message::WalkReject(_)
            | Message::WalkDone { .. }
            | Message::Query(_)
            | Message::QueryDone(_) => Some(self.instance_key()),
            _ => None,
        }
    }
}

/// A message queued for delivery: the driver owns *how* it travels.
#[derive(Clone, Debug, PartialEq)]
pub struct Outbound {
    /// Destination peer.
    pub to: Id,
    /// Payload.
    pub msg: Message,
}

impl Outbound {
    /// Convenience constructor.
    pub fn new(to: Id, msg: Message) -> Self {
        Outbound { to, msg }
    }
}

/// A local instruction from the driver (or harness) to one peer.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Install ring state directly (pre-seeded topologies, bench bootstrap).
    Bootstrap {
        /// Predecessor on the ring.
        pred: Id,
        /// Successor list, nearest first.
        succs: Vec<Id>,
        /// Initial membership view.
        known: Vec<Id>,
    },
    /// Join the overlay through `contact`.
    Join {
        /// Any live peer already in the overlay.
        contact: Id,
    },
    /// Launch `walks` MH sampling walks and link to the samples.
    BuildLinks {
        /// Number of walks (= long links wanted).
        walks: u32,
    },
    /// Drop all long out-links and rebuild them with fresh walks.
    Rewire {
        /// Number of replacement walks.
        walks: u32,
    },
    /// Resolve `key`: route a query and report the outcome.
    StartQuery {
        /// Harness-assigned id, echoed in the report.
        qid: u64,
        /// The key to resolve.
        key: Id,
    },
    /// One round of anti-entropy gossip (uses the driver's RNG — the only
    /// protocol activity outside the deterministic token core).
    GossipTick,
    /// Probe the ring neighbourhood (predecessor + leading successors)
    /// for liveness. Detection rides the timer table: unanswered probes
    /// retry with backoff and a drained budget declares the target dead,
    /// triggering the configured [`RepairPolicy`](crate::RepairPolicy).
    /// The driver owns the probe cadence, the machine owns the verdict.
    ProbeRing,
    /// Leave the overlay gracefully: announce [`Message::Leaving`] to
    /// ring neighbours, dissolve long links, and go quiet. The driver
    /// removes the actor once the farewell messages have flushed.
    Depart,
    /// Advance this peer's virtual clock to `now` and fire any expired
    /// deadlines. Drivers own time (the DES counts settle rounds, the
    /// threaded runtime ticks at quiescent points); machines only own
    /// deadlines — no protocol code ever reads a wall clock.
    TimerTick {
        /// The driver's current timer round (monotone per deployment).
        now: u64,
    },
}

/// Which class of pending operation a timeout event refers to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A `JoinRequest` awaiting its `JoinWelcome`.
    Join,
    /// A launched MH walk awaiting its `WalkDone`.
    Walk,
    /// An issued query awaiting completion.
    Query,
    /// A `LinkRequest` awaiting accept/reject.
    Link,
    /// A ring-liveness `Ping` awaiting its `Pong`.
    Probe,
}

/// How a peer came to declare a neighbour dead.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RepairTrigger {
    /// A ring probe exhausted its retries (or bounced) without a pong.
    RingDetect,
    /// A query forward bounced off the corpse (on-probe detection).
    QueryDetect,
}

/// Outcome of one query, reported back to its origin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryReport {
    /// Harness-assigned query id.
    pub qid: u64,
    /// The issuing peer.
    pub origin: Id,
    /// The key that was resolved.
    pub key: Id,
    /// True iff the key's owner was reached within budget.
    pub success: bool,
    /// Useful forward hops.
    pub hops: u32,
    /// Non-advancing messages (dead probes, backtracks).
    pub wasted: u32,
    /// Dead-end retreats.
    pub backtracks: u32,
    /// Which issue of the query produced this outcome (0 = first try).
    pub attempt: u32,
    /// The owner that answered, when successful.
    pub dest: Option<Id>,
}

impl QueryReport {
    /// Total message cost (useful + wasted), the paper's cost metric.
    pub fn cost(&self) -> u32 {
        self.hops + self.wasted
    }
}

/// Locally observable protocol milestones, drained by the driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// The peer spliced into the ring (welcome processed).
    JoinCompleted {
        /// The joined peer.
        peer: Id,
    },
    /// All outstanding walks finished and link requests were issued.
    WalksSettled {
        /// The walking peer.
        peer: Id,
        /// Samples collected by the finished walk batch.
        samples: usize,
    },
    /// A query this peer issued has completed.
    QueryCompleted(QueryReport),
    /// A pending operation's deadline expired at a timer tick.
    TimedOut {
        /// The waiting peer.
        peer: Id,
        /// Which operation class timed out.
        op: OpKind,
        /// Attempts made so far (0 = the first send timed out).
        attempt: u32,
    },
    /// A timed-out operation was retried (with backoff).
    Retried {
        /// The retrying peer.
        peer: Id,
        /// Which operation class was retried.
        op: OpKind,
        /// The retry's attempt number (1 = first retry).
        attempt: u32,
    },
    /// A pending operation exhausted its retries and was abandoned
    /// gracefully (shorter walk sample, failed query report, unjoined
    /// peer) — *not* a [`ProtocolEvent::Fault`].
    GaveUp {
        /// The abandoning peer.
        peer: Id,
        /// Which operation class was abandoned.
        op: OpKind,
        /// Total attempts made before giving up.
        attempts: u32,
    },
    /// A dead neighbour was detected and the configured repair policy
    /// rewired around it (ring splice always happens on detection; this
    /// event fires only when the policy additionally launched walks).
    RepairFired {
        /// The repairing peer.
        peer: Id,
        /// The neighbour declared dead.
        dead: Id,
        /// Which detection channel found the corpse.
        trigger: RepairTrigger,
        /// Replacement walks launched by the policy.
        walks: u32,
    },
    /// The machine hit a state it cannot make progress from and
    /// recovered by dropping the operation instead of panicking. The
    /// driver decides whether to log, count, or abort; a fault must
    /// never kill a worker thread (panic-policy).
    Fault {
        /// The faulting peer.
        peer: Id,
        /// What was dropped (static so events stay cheap and `Eq`).
        context: &'static str,
    },
}
