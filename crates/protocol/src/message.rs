//! The protocol's message taxonomy and driver-facing envelopes.
//!
//! A [`PeerMachine`](crate::PeerMachine) communicates with the world
//! exclusively through these types: it receives a [`Message`] (or a local
//! [`Command`] from its driver) and returns [`Outbound`] messages plus
//! locally observable [`ProtocolEvent`]s. Drivers — the discrete-event
//! simulator and the threaded actor runtime — only move envelopes; they
//! never inspect or mutate peer state.

use crate::token::{QueryToken, WalkToken};
use oscar_types::Id;

/// A protocol message between two peers.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    // --- ring membership -------------------------------------------------
    /// Routed greedily toward `joiner`'s position; the owner splices.
    JoinRequest {
        /// The joining peer (also the routing key).
        joiner: Id,
    },
    /// Owner → joiner: your predecessor and successor list.
    JoinWelcome {
        /// The joiner's new predecessor (the owner's old one).
        pred: Id,
        /// The joiner's successor list, nearest first (head = the owner).
        succs: Vec<Id>,
    },
    /// Joiner → its predecessor: "your immediate successor is now me".
    NewSuccessor {
        /// The new successor (the joiner).
        succ: Id,
    },

    // --- Metropolis–Hastings sampling walk -------------------------------
    /// Holder → candidate: one walk step proposal.
    WalkProbe(WalkToken),
    /// Candidate → holder: proposal rejected, walk stays (step consumed).
    WalkReject(WalkToken),
    /// Final holder → origin: the walk's sample.
    WalkDone {
        /// Which of the origin's walks finished.
        walk_id: u64,
        /// The sampled peer.
        sample: Id,
    },

    // --- long links -------------------------------------------------------
    /// Origin → sampled peer: request a long link.
    LinkRequest,
    /// Target accepted; the requester installs the out-link.
    LinkAccept,
    /// Target at capacity (or duplicate); the requester drops the sample.
    LinkReject,
    /// Either endpoint dissolves the link (rewire, shutdown).
    Unlink,

    // --- queries ----------------------------------------------------------
    /// A greedy-routed query token, forwarded toward its key.
    Query(QueryToken),
    /// Final peer → origin: the query's outcome.
    QueryDone(QueryReport),

    // --- gossip membership -------------------------------------------------
    /// Push a sample of the sender's membership view.
    GossipPush {
        /// Peer ids known to the sender (a bounded sample).
        view: Vec<Id>,
    },
    /// Reply to a push with the receiver's own sample (one round, no echo).
    GossipPull {
        /// Peer ids known to the replier (a bounded sample).
        view: Vec<Id>,
    },
}

/// A message queued for delivery: the driver owns *how* it travels.
#[derive(Clone, Debug, PartialEq)]
pub struct Outbound {
    /// Destination peer.
    pub to: Id,
    /// Payload.
    pub msg: Message,
}

impl Outbound {
    /// Convenience constructor.
    pub fn new(to: Id, msg: Message) -> Self {
        Outbound { to, msg }
    }
}

/// A local instruction from the driver (or harness) to one peer.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Install ring state directly (pre-seeded topologies, bench bootstrap).
    Bootstrap {
        /// Predecessor on the ring.
        pred: Id,
        /// Successor list, nearest first.
        succs: Vec<Id>,
        /// Initial membership view.
        known: Vec<Id>,
    },
    /// Join the overlay through `contact`.
    Join {
        /// Any live peer already in the overlay.
        contact: Id,
    },
    /// Launch `walks` MH sampling walks and link to the samples.
    BuildLinks {
        /// Number of walks (= long links wanted).
        walks: u32,
    },
    /// Drop all long out-links and rebuild them with fresh walks.
    Rewire {
        /// Number of replacement walks.
        walks: u32,
    },
    /// Resolve `key`: route a query and report the outcome.
    StartQuery {
        /// Harness-assigned id, echoed in the report.
        qid: u64,
        /// The key to resolve.
        key: Id,
    },
    /// One round of anti-entropy gossip (uses the driver's RNG — the only
    /// protocol activity outside the deterministic token core).
    GossipTick,
}

/// Outcome of one query, reported back to its origin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryReport {
    /// Harness-assigned query id.
    pub qid: u64,
    /// The issuing peer.
    pub origin: Id,
    /// The key that was resolved.
    pub key: Id,
    /// True iff the key's owner was reached within budget.
    pub success: bool,
    /// Useful forward hops.
    pub hops: u32,
    /// Non-advancing messages (dead probes, backtracks).
    pub wasted: u32,
    /// Dead-end retreats.
    pub backtracks: u32,
    /// The owner that answered, when successful.
    pub dest: Option<Id>,
}

impl QueryReport {
    /// Total message cost (useful + wasted), the paper's cost metric.
    pub fn cost(&self) -> u32 {
        self.hops + self.wasted
    }
}

/// Locally observable protocol milestones, drained by the driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// The peer spliced into the ring (welcome processed).
    JoinCompleted {
        /// The joined peer.
        peer: Id,
    },
    /// All outstanding walks finished and link requests were issued.
    WalksSettled {
        /// The walking peer.
        peer: Id,
        /// Samples collected by the finished walk batch.
        samples: usize,
    },
    /// A query this peer issued has completed.
    QueryCompleted(QueryReport),
    /// The machine hit a state it cannot make progress from and
    /// recovered by dropping the operation instead of panicking. The
    /// driver decides whether to log, count, or abort; a fault must
    /// never kill a worker thread (panic-policy).
    Fault {
        /// The faulting peer.
        peer: Id,
        /// What was dropped (static so events stay cheap and `Eq`).
        context: &'static str,
    },
}
