//! # oscar-protocol — the runtime-agnostic protocol core
//!
//! Everything Oscar *decides* — Metropolis–Hastings sampling walks,
//! greedy clockwise routing, ring splicing, long-link negotiation —
//! extracted from the simulator into pure, side-effect-free per-peer
//! state machines. A [`PeerMachine`] owns only its local link table and
//! successor list and advances via
//! `on_message(&mut self, from, msg, rng) -> Vec<Outbound>`; it has no
//! global snapshot and no notion of time or transport.
//!
//! Two layers:
//!
//! * [`logic`] — stateless decision kernels (MH acceptance, progress
//!   ranking, ownership). The discrete-event simulator in `oscar-sim`
//!   delegates its hot loops to these functions *without changing a
//!   single RNG draw*, so all committed baselines stay byte-identical.
//! * [`machine`] — the full message-driven peer. Driven by two worlds:
//!   the DES adapter in `oscar-sim` (virtual time, one event queue) and
//!   the threaded actor runtime in `oscar-runtime` (wall-clock, one
//!   mailbox per peer, all cores busy).
//!
//! Determinism boundary: walk and query tokens carry their own
//! [`TokenRng`] stream, so a token realises the same random choices no
//! matter which peer, thread, or driver advances it. Only gossip draws
//! from the driver-supplied RNG.

pub mod driver;
pub mod fault;
pub mod logic;
pub mod machine;
pub mod message;
pub mod token;

pub use driver::ProtocolDriver;
pub use fault::{FaultDecision, FaultPlan};
pub use machine::{PeerConfig, PeerMachine, RepairPolicy};
pub use message::{Command, Message, OpKind, Outbound, ProtocolEvent, QueryReport, RepairTrigger};
pub use token::{QueryToken, TokenRng, WalkToken};
