//! # oscar-runtime — a threaded actor driver for the protocol core
//!
//! The second world the [`oscar_protocol::PeerMachine`] runs in: every
//! peer is an actor behind its own FIFO mailbox, executed by a pool of
//! OS worker threads against wall-clock time. Where the discrete-event
//! simulator (`oscar-sim`) delivers envelopes one at a time in virtual
//! time, this runtime delivers them concurrently with all cores busy —
//! the same state machines, zero protocol code duplicated.
//!
//! Scheduling model (no async runtime — the workspace is offline and
//! dependency-free by construction):
//!
//! * each actor has a `Mutex<VecDeque>` mailbox and a `scheduled` flag;
//! * a shared run queue + condvar feeds worker threads; an actor is
//!   enqueued when its mailbox goes non-empty and re-armed when drained;
//! * an atomic in-flight message counter backs [`Runtime::quiesce`],
//!   which blocks until the network has gone silent;
//! * sends to unknown/removed peers synchronously invoke the sender's
//!   `on_delivery_failure` — the same failure surface the DES presents.
//!
//! Determinism: the protocol's token-carried RNG makes walk and query
//! outcomes scheduling-independent, so a serialized command sequence
//! (join, build links, quiesce between) produces *identical* link tables
//! here and in the DES — asserted by the cross-driver equivalence test
//! in the workspace root.

use oscar_protocol::{
    machine::peer_seed, Command, FaultPlan, Message, Outbound, PeerConfig, PeerMachine,
    ProtocolDriver, ProtocolEvent,
};
use oscar_types::labels::runtime::{LBL_GOSSIP, LBL_WORKER};
use oscar_types::{Id, SeedTree};
use rand::rngs::SmallRng;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Runtime construction parameters.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Worker threads (0 = all available parallelism).
    pub workers: usize,
    /// Root seed: peer machines and worker RNGs derive from it.
    pub seed: u64,
    /// Per-peer protocol tunables.
    pub peer_cfg: PeerConfig,
    /// Fault plan applied to every send (reliable by default).
    pub plan: FaultPlan,
}

impl RuntimeConfig {
    /// Default config at a given seed.
    pub fn new(seed: u64) -> Self {
        RuntimeConfig {
            workers: 0,
            seed,
            peer_cfg: PeerConfig::default(),
            plan: FaultPlan::reliable(),
        }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the peer tunables.
    pub fn with_peer_cfg(mut self, cfg: PeerConfig) -> Self {
        self.peer_cfg = cfg;
        self
    }

    /// Subjects every send to `plan` at the runtime's single routing
    /// point (`Shared::send` — the DES's analogue is `enqueue_all`).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }
}

/// One peer actor: machine + mailbox + scheduling flag.
struct Actor {
    id: Id,
    machine: Mutex<PeerMachine>,
    mailbox: Mutex<VecDeque<(Id, Message)>>,
    scheduled: AtomicBool,
}

/// State shared between the handle and the worker threads.
struct Shared {
    // BTreeMap, not HashMap: peer enumeration (stats, snapshots,
    // peer_ids) walks this map, and ordered iteration keeps every such
    // walk deterministic for free (iter-order discipline).
    actors: RwLock<BTreeMap<Id, Arc<Actor>>>,
    runq: Mutex<VecDeque<Id>>,
    runq_cv: Condvar,
    /// Messages enqueued but not yet fully processed.
    pending: AtomicUsize,
    quiesce_mx: Mutex<()>,
    quiesce_cv: Condvar,
    stop: AtomicBool,
    inject_nonce: AtomicU64,
    events: Mutex<Vec<ProtocolEvent>>,
    plan: FaultPlan,
    /// Current timer round (virtual failure-detection time); advanced
    /// only at quiescent points via [`Runtime::tick_timers`].
    round: AtomicU64,
    sent: AtomicU64,
    delivered: AtomicU64,
    bounced: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    /// Lifetime [`ProtocolEvent::Fault`] count — unlike the drained
    /// event buffer this never resets, so harnesses gate runs on it.
    faults: AtomicU64,
    busy_ns: Vec<AtomicU64>,
    per_worker_msgs: Vec<AtomicU64>,
}

/// Aggregate counters for throughput reporting. Mirrors the DES
/// driver's accounting: at any quiescent point
/// `sent == delivered + dropped + bounced`.
#[derive(Clone, Debug)]
pub struct RuntimeStats {
    /// Envelopes handed to the transport (fault copies included).
    pub sent: u64,
    /// Messages delivered to mailboxes and processed.
    pub delivered: u64,
    /// Sends to missing peers returned as `on_delivery_failure`.
    pub bounced: u64,
    /// Envelopes silently discarded: fault-plan drops, blackholed sends
    /// to missing peers, and mail queued to a removed peer.
    pub dropped: u64,
    /// Extra copies injected by the fault plan (each also in `sent`).
    pub duplicated: u64,
    /// `ProtocolEvent::Fault` occurrences over the runtime's lifetime.
    pub faults: u64,
    /// Per-worker busy time in nanoseconds.
    pub busy_ns: Vec<u64>,
    /// Per-worker processed-message counts.
    pub per_worker_msgs: Vec<u64>,
}

impl RuntimeStats {
    /// Mean number of cores kept busy over a wall-clock interval.
    pub fn cores_busy(&self, wall_ns: u64) -> f64 {
        if wall_ns == 0 {
            return 0.0;
        }
        self.busy_ns.iter().sum::<u64>() as f64 / wall_ns as f64
    }

    /// Number of workers that processed at least one message.
    pub fn active_workers(&self) -> usize {
        self.per_worker_msgs.iter().filter(|&&m| m > 0).count()
    }
}

/// The actor runtime handle. Dropping it shuts the worker pool down.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    cfg: RuntimeConfig,
}

impl Runtime {
    /// Starts the worker pool.
    pub fn new(cfg: RuntimeConfig) -> Self {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            actors: RwLock::new(BTreeMap::new()),
            runq: Mutex::new(VecDeque::new()),
            runq_cv: Condvar::new(),
            pending: AtomicUsize::new(0),
            quiesce_mx: Mutex::new(()),
            quiesce_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            inject_nonce: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
            plan: cfg.plan.clone(),
            round: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            bounced: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            per_worker_msgs: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..workers)
            .map(|w| {
                let sh = Arc::clone(&shared);
                // lint:allow(rng-discipline, worker gossip streams root at the runtime config seed — the deployment entry point)
                let rng = SeedTree::new(cfg.seed).child2(LBL_WORKER, w as u64).rng();
                std::thread::Builder::new()
                    .name(format!("oscar-worker-{w}"))
                    .spawn(move || worker_loop(sh, w, rng))
                    .expect("spawn worker")
            })
            .collect();
        Runtime {
            shared,
            workers: handles,
            cfg,
        }
    }

    /// The runtime's root seed.
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Registers a pre-built machine as an actor.
    pub fn spawn_machine(&self, machine: PeerMachine) {
        let actor = Arc::new(Actor {
            id: machine.id(),
            machine: Mutex::new(machine),
            mailbox: Mutex::new(VecDeque::new()),
            scheduled: AtomicBool::new(false),
        });
        self.shared.actors.write().unwrap().insert(actor.id, actor);
    }

    /// Spawns a fresh solo peer with the canonical derived seed (the DES
    /// driver uses the same derivation, which the equivalence test relies
    /// on).
    pub fn spawn_peer(&self, id: Id) {
        self.spawn_machine(PeerMachine::new(
            id,
            peer_seed(self.cfg.seed, id),
            self.cfg.peer_cfg.clone(),
        ));
    }

    /// Removes a peer outright (a crash): queued mail is discarded, and
    /// future sends to it surface as delivery failures at the senders.
    pub fn remove_peer(&self, id: Id) -> bool {
        let removed = self.shared.actors.write().unwrap().remove(&id);
        if let Some(actor) = removed {
            let dropped = actor.mailbox.lock().unwrap().len();
            // Mail queued to the corpse counts as dropped, so the
            // sent/delivered/dropped/bounced reconciliation still holds.
            self.shared
                .dropped
                .fetch_add(dropped as u64, Ordering::Relaxed);
            for _ in 0..dropped {
                self.shared.dec_pending();
            }
            true
        } else {
            false
        }
    }

    /// Live peer ids, sorted.
    pub fn peer_ids(&self) -> Vec<Id> {
        // BTreeMap keys iterate in ascending order: already sorted.
        self.shared.actors.read().unwrap().keys().copied().collect()
    }

    /// Runs `f` against one peer's machine (read-only access pattern).
    pub fn with_peer<T>(&self, id: Id, f: impl FnOnce(&PeerMachine) -> T) -> Option<T> {
        let actor = self.shared.actors.read().unwrap().get(&id).cloned()?;
        let machine = actor.machine.lock().unwrap();
        Some(f(&machine))
    }

    /// Delivers a command to one peer on the calling thread; resulting
    /// messages flow through the worker pool.
    pub fn inject(&self, id: Id, cmd: Command) -> bool {
        let Some(actor) = self.shared.actors.read().unwrap().get(&id).cloned() else {
            return false;
        };
        // Fresh per-call stream: commands (gossip in particular) must not
        // replay the same draws every round.
        let nonce = self.shared.inject_nonce.fetch_add(1, Ordering::Relaxed);
        // lint:allow(rng-discipline, inject streams are keyed by nonce so thread interleaving cannot reorder draws)
        let mut rng = SeedTree::new(self.cfg.seed).child2(LBL_GOSSIP, nonce).rng();
        let outs = {
            let mut m = actor.machine.lock().unwrap();
            let outs = m.on_command(cmd, &mut rng);
            self.shared.collect_events(&mut m);
            outs
        };
        for o in outs {
            self.shared.send(&actor, o);
        }
        true
    }

    /// Blocks until no message is in flight anywhere.
    pub fn quiesce(&self) {
        let mut g = self.shared.quiesce_mx.lock().unwrap();
        while self.shared.pending.load(Ordering::SeqCst) != 0 {
            g = self.shared.quiesce_cv.wait(g).unwrap();
        }
    }

    /// Spawns `joiner`, joins it through `contact`, and waits for the
    /// splice to settle. Returns true iff the join completed.
    pub fn join_and_wait(&self, joiner: Id, contact: Id) -> bool {
        self.spawn_peer(joiner);
        self.inject(joiner, Command::Join { contact });
        self.quiesce();
        self.drain_events()
            .iter()
            .any(|e| matches!(e, ProtocolEvent::JoinCompleted { peer } if *peer == joiner))
    }

    /// One anti-entropy gossip round across all peers.
    pub fn gossip_round(&self) {
        for id in self.peer_ids() {
            self.inject(id, Command::GossipTick);
        }
    }

    /// Drains protocol milestones collected since the last drain.
    pub fn drain_events(&self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut *self.shared.events.lock().unwrap())
    }

    /// The earliest pending deadline across all machines, if any
    /// operation anywhere is still awaiting completion.
    pub fn next_timer_round(&self) -> Option<u64> {
        let actors: Vec<Arc<Actor>> = self
            .shared
            .actors
            .read()
            .unwrap()
            .values()
            .cloned()
            .collect();
        actors
            .iter()
            .filter_map(|a| a.machine.lock().unwrap().next_deadline())
            .min()
    }

    /// Advances the timer round to the earliest pending deadline and
    /// ticks every machine whose deadline has come due; false when no
    /// machine is waiting. Call only after [`Runtime::quiesce`]: with
    /// the network silent, all loss is final, so an expired deadline is
    /// a genuine loss — identical semantics to the DES's `tick_timers`.
    pub fn tick_timers(&self) -> bool {
        let Some(min) = self.next_timer_round() else {
            return false;
        };
        let prev = self.shared.round.fetch_max(min, Ordering::SeqCst);
        let now = prev.max(min);
        let due: Vec<Id> = {
            let actors: Vec<Arc<Actor>> = self
                .shared
                .actors
                .read()
                .unwrap()
                .values()
                .cloned()
                .collect();
            actors
                .iter()
                .filter(|a| {
                    a.machine
                        .lock()
                        .unwrap()
                        .next_deadline()
                        .is_some_and(|d| d <= now)
                })
                .map(|a| a.id)
                .collect()
        };
        for id in due {
            self.inject(id, Command::TimerTick { now });
        }
        true
    }

    /// Alternates [`Runtime::quiesce`] with timer rounds until every
    /// pending operation resolved (completion, retry success, or
    /// graceful give-up) or `max_rounds` timer rounds elapsed.
    pub fn settle(&self, max_rounds: u64) {
        self.quiesce();
        for _ in 0..max_rounds {
            if !self.tick_timers() {
                break;
            }
            self.quiesce();
        }
    }

    /// The current timer round (virtual failure-detection time).
    pub fn round(&self) -> u64 {
        self.shared.round.load(Ordering::SeqCst)
    }

    /// Lifetime [`ProtocolEvent::Fault`] count (never reset by
    /// [`Runtime::drain_events`]).
    pub fn fault_count(&self) -> u64 {
        self.shared.faults.load(Ordering::Relaxed)
    }

    /// Advances the timer round to at least `round`: quiesces the
    /// network, then fires every deadline up to `round` (each followed
    /// by the traffic it provokes). Deadlines beyond `round` stay
    /// pending — same slicing of time as the DES's `advance_to`.
    pub fn advance_to(&self, round: u64) {
        self.quiesce();
        while self.next_timer_round().is_some_and(|d| d <= round) {
            self.tick_timers();
            self.quiesce();
        }
        self.shared.round.fetch_max(round, Ordering::SeqCst);
    }

    /// Aggregate counters.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            sent: self.shared.sent.load(Ordering::Relaxed),
            delivered: self.shared.delivered.load(Ordering::Relaxed),
            bounced: self.shared.bounced.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            duplicated: self.shared.duplicated.load(Ordering::Relaxed),
            faults: self.shared.faults.load(Ordering::Relaxed),
            busy_ns: self
                .shared
                .busy_ns
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            per_worker_msgs: self
                .shared
                .per_worker_msgs
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Stops the worker pool and joins every thread. In-flight messages
    /// are discarded; idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        {
            let _g = self.shared.runq.lock().unwrap();
            self.shared.runq_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Unblock any quiesce() stuck behind discarded messages.
        self.shared.pending.store(0, Ordering::SeqCst);
        let _g = self.shared.quiesce_mx.lock().unwrap();
        self.shared.quiesce_cv.notify_all();
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The threaded runtime as a generic machine host: the round counter is
/// the quiescent-point timer clock, so the churn engine's schedule maps
/// onto the same virtual failure-detection time the DES uses.
impl ProtocolDriver for Runtime {
    fn spawn_peer(&mut self, id: Id) {
        if !self.shared.actors.read().unwrap().contains_key(&id) {
            Runtime::spawn_peer(self, id);
        }
    }

    fn remove_peer(&mut self, id: Id) {
        Runtime::remove_peer(self, id);
    }

    fn inject(&mut self, id: Id, cmd: Command) {
        Runtime::inject(self, id, cmd);
    }

    fn settle(&mut self, max_rounds: u64) -> u64 {
        self.quiesce();
        let mut rounds = 0;
        while rounds < max_rounds && self.tick_timers() {
            self.quiesce();
            rounds += 1;
        }
        rounds
    }

    fn advance_to(&mut self, round: u64) {
        Runtime::advance_to(self, round);
    }

    fn round(&self) -> u64 {
        Runtime::round(self)
    }

    fn peer_ids(&self) -> Vec<Id> {
        Runtime::peer_ids(self)
    }

    fn drain_events(&mut self) -> Vec<ProtocolEvent> {
        Runtime::drain_events(self)
    }

    fn sent(&self) -> u64 {
        self.shared.sent.load(Ordering::Relaxed)
    }

    fn fault_count(&self) -> u64 {
        Runtime::fault_count(self)
    }
}

impl Shared {
    /// Routes one outbound from `from`; the runtime's single routing
    /// point, where the fault plan is consulted (the DES's analogue is
    /// `enqueue_all`). Missing targets bounce back as delivery failures
    /// on the sender, recursively — unless the plan blackholes crashes,
    /// in which case only the sender's timers can notice.
    fn send(&self, from: &Arc<Actor>, out: Outbound) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        let mut copies = 1u64;
        if !self.plan.is_reliable() {
            let fate = self.plan.decide(from.id, out.to, &out.msg);
            if fate.drop {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if fate.duplicate {
                // extra_delay is a virtual-time notion; the threaded
                // runtime reorders naturally and ignores it.
                copies = 2;
                self.sent.fetch_add(1, Ordering::Relaxed);
                self.duplicated.fetch_add(1, Ordering::Relaxed);
            }
        }
        let target = self.actors.read().unwrap().get(&out.to).cloned();
        match target {
            Some(target) => {
                for _ in 0..copies {
                    self.pending.fetch_add(1, Ordering::SeqCst);
                    target
                        .mailbox
                        .lock()
                        .unwrap()
                        .push_back((from.id, out.msg.clone()));
                }
                self.schedule(&target);
            }
            None if self.plan.blackhole_on_crash() => {
                self.dropped.fetch_add(copies, Ordering::Relaxed);
            }
            None => {
                self.bounced.fetch_add(copies, Ordering::Relaxed);
                for _ in 0..copies {
                    let outs = {
                        let mut m = from.machine.lock().unwrap();
                        let outs = m.on_delivery_failure(out.to, out.msg.clone());
                        self.collect_events(&mut m);
                        outs
                    };
                    for o in outs {
                        self.send(from, o);
                    }
                }
            }
        }
    }

    /// Puts an actor on the run queue unless it is already scheduled.
    fn schedule(&self, actor: &Arc<Actor>) {
        if !actor.scheduled.swap(true, Ordering::SeqCst) {
            self.runq.lock().unwrap().push_back(actor.id);
            self.runq_cv.notify_one();
        }
    }

    fn collect_events(&self, m: &mut PeerMachine) {
        let evs = m.drain_events();
        if !evs.is_empty() {
            let faults = evs
                .iter()
                .filter(|e| matches!(e, ProtocolEvent::Fault { .. }))
                .count() as u64;
            if faults > 0 {
                self.faults.fetch_add(faults, Ordering::Relaxed);
            }
            self.events.lock().unwrap().extend(evs);
        }
    }

    fn dec_pending(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = self.quiesce_mx.lock().unwrap();
            self.quiesce_cv.notify_all();
        }
    }
}

/// The worker thread body: pop actors, drain mailboxes, route replies.
fn worker_loop(shared: Arc<Shared>, widx: usize, mut rng: SmallRng) {
    loop {
        let id = {
            let mut q = shared.runq.lock().unwrap();
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = q.pop_front() {
                    break id;
                }
                q = shared.runq_cv.wait(q).unwrap();
            }
        };
        let Some(actor) = shared.actors.read().unwrap().get(&id).cloned() else {
            continue; // removed while queued; its pending was reclaimed
        };
        let t0 = Instant::now();
        let mut processed = 0u64;
        loop {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let batch: Vec<(Id, Message)> = {
                let mut mb = actor.mailbox.lock().unwrap();
                mb.drain(..).collect()
            };
            if batch.is_empty() {
                actor.scheduled.store(false, Ordering::SeqCst);
                // Re-arm race: mail may have landed between drain and store.
                let refill = !actor.mailbox.lock().unwrap().is_empty();
                if refill && !actor.scheduled.swap(true, Ordering::SeqCst) {
                    continue;
                }
                break;
            }
            for (from, msg) in batch {
                let outs = {
                    let mut m = actor.machine.lock().unwrap();
                    let outs = m.on_message(from, msg, &mut rng);
                    shared.collect_events(&mut m);
                    outs
                };
                for o in outs {
                    shared.send(&actor, o);
                }
                // Count the delivery before releasing the in-flight slot:
                // once `pending` hits zero a quiescent observer must see
                // sent == delivered + dropped + bounced already settled.
                shared.delivered.fetch_add(1, Ordering::Relaxed);
                shared.dec_pending();
                processed += 1;
            }
        }
        if processed > 0 {
            shared.per_worker_msgs[widx].fetch_add(processed, Ordering::Relaxed);
            shared.busy_ns[widx].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime(workers: usize, seed: u64) -> Runtime {
        Runtime::new(RuntimeConfig::new(seed).with_workers(workers))
    }

    #[test]
    fn serial_joins_form_the_sorted_ring() {
        let rt = runtime(4, 7);
        let ids: Vec<Id> = [500u64, 100, 900, 300, 700]
            .iter()
            .map(|&i| Id::new(i))
            .collect();
        rt.spawn_peer(ids[0]);
        for &id in &ids[1..] {
            assert!(rt.join_and_wait(id, ids[0]), "join of {id:?} timed out");
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        for (k, &id) in sorted.iter().enumerate() {
            let succ = sorted[(k + 1) % sorted.len()];
            let got = rt.with_peer(id, |m| m.succs()[0]).unwrap();
            assert_eq!(got, succ, "succ of {id:?}");
        }
    }

    #[test]
    fn quiesce_observes_silence() {
        let rt = runtime(2, 1);
        rt.spawn_peer(Id::new(10));
        assert!(rt.join_and_wait(Id::new(20), Id::new(10)));
        rt.quiesce(); // immediately satisfiable
        assert_eq!(rt.stats().bounced, 0);
    }

    #[test]
    fn queries_resolve_in_parallel() {
        let rt = runtime(4, 3);
        let ids: Vec<Id> = (0..64u64).map(|i| Id::new(i * 1_000_003)).collect();
        rt.spawn_peer(ids[0]);
        for &id in &ids[1..] {
            assert!(rt.join_and_wait(id, ids[0]));
        }
        for &id in &ids {
            rt.inject(id, Command::BuildLinks { walks: 2 });
        }
        rt.quiesce();
        rt.drain_events();
        // A storm of queries from every peer at once.
        let mut qid = 0u64;
        for &id in &ids {
            for k in 0..4u64 {
                rt.inject(
                    id,
                    Command::StartQuery {
                        qid,
                        key: Id::new(k.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    },
                );
                qid += 1;
            }
        }
        rt.quiesce();
        let events = rt.drain_events();
        let done = events
            .iter()
            .filter(|e| matches!(e, ProtocolEvent::QueryCompleted(r) if r.success))
            .count();
        assert_eq!(
            done, qid as usize,
            "all queries must succeed on a clean ring"
        );
    }

    #[test]
    fn gossip_rounds_spread_membership() {
        let rt = runtime(4, 11);
        let ids: Vec<Id> = (0..16u64).map(|i| Id::new((i + 1) << 32)).collect();
        rt.spawn_peer(ids[0]);
        for &id in &ids[1..] {
            assert!(rt.join_and_wait(id, ids[0]));
        }
        for _ in 0..8 {
            rt.gossip_round();
            rt.quiesce();
        }
        let min_known = ids
            .iter()
            .map(|&id| rt.with_peer(id, |m| m.known().len()).unwrap())
            .min()
            .unwrap();
        assert!(min_known >= ids.len() / 2, "gossip stalled: {min_known}");
    }

    #[test]
    fn dead_peer_sends_surface_as_failures_not_hangs() {
        let rt = runtime(2, 5);
        let ids: Vec<Id> = (1..=8u64).map(|i| Id::new(i * 1_000)).collect();
        rt.spawn_peer(ids[0]);
        for &id in &ids[1..] {
            assert!(rt.join_and_wait(id, ids[0]));
        }
        assert!(rt.remove_peer(ids[3]));
        // Route queries across the corpse's arc; they must all terminate.
        rt.drain_events();
        for (q, &id) in ids.iter().enumerate() {
            if id == ids[3] {
                continue;
            }
            rt.inject(
                id,
                Command::StartQuery {
                    qid: q as u64,
                    key: Id::new(3_500),
                },
            );
        }
        rt.quiesce();
        let events = rt.drain_events();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, ProtocolEvent::QueryCompleted(_)))
                .count(),
            ids.len() - 1
        );
        assert!(rt.stats().bounced > 0, "corpse probes must be counted");
    }
}
