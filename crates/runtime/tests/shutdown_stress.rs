//! Stress tests for the runtime's shutdown path.
//!
//! The scheduling model has three places a shutdown can deadlock if the
//! wake-up protocol is wrong: workers parked on the run-queue condvar,
//! workers mid-batch inside an actor, and callers parked in `quiesce`
//! behind messages that will never be processed. These tests slam the
//! runtime with traffic and pull the plug mid-flight, repeatedly, under
//! varying worker counts — every iteration must return.

use oscar_protocol::{Command, FaultPlan};
use oscar_runtime::{Runtime, RuntimeConfig};
use oscar_types::Id;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Builds a small settled ring so injected traffic actually routes.
fn settled_ring(rt: &Runtime, n: u64) -> Vec<Id> {
    let ids: Vec<Id> = (0..n).map(|i| Id::new((i + 1) * 1_000_003)).collect();
    rt.spawn_peer(ids[0]);
    for &id in &ids[1..] {
        assert!(rt.join_and_wait(id, ids[0]));
    }
    for &id in &ids {
        rt.inject(id, Command::BuildLinks { walks: 2 });
    }
    rt.quiesce();
    rt.drain_events();
    ids
}

/// Runs `f` on a watchdog thread; panics if it does not finish in time.
/// A hang in shutdown would otherwise stall the whole test binary with
/// no diagnostic.
fn must_finish_within(label: &str, secs: u64, f: impl FnOnce() + Send + 'static) {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    let h = std::thread::spawn(move || {
        f();
        flag.store(true, Ordering::SeqCst);
    });
    let deadline = std::time::Instant::now() + Duration::from_secs(secs);
    while std::time::Instant::now() < deadline {
        if done.load(Ordering::SeqCst) {
            h.join().unwrap();
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("{label}: did not finish within {secs}s — shutdown hang");
}

#[test]
fn shutdown_mid_query_storm_returns() {
    // 20 iterations across worker counts: inject a query storm and shut
    // down immediately, without quiescing first.
    must_finish_within("mid-storm shutdown", 120, || {
        for iter in 0..20u64 {
            let workers = 1 + (iter as usize % 4);
            let mut rt = Runtime::new(RuntimeConfig::new(1000 + iter).with_workers(workers));
            let ids = settled_ring(&rt, 24);
            let mut qid = 0u64;
            for &id in &ids {
                for k in 0..8u64 {
                    rt.inject(
                        id,
                        Command::StartQuery {
                            qid,
                            key: Id::new(k.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                        },
                    );
                    qid += 1;
                }
            }
            // No quiesce: messages are in flight right now.
            rt.shutdown();
            // Discarded in-flight messages must not strand a later
            // quiesce — shutdown zeroes the pending counter.
            rt.quiesce();
        }
    });
}

#[test]
fn quiesce_under_load_then_repeated_shutdown() {
    // quiesce() parked behind live traffic must be woken by the workers
    // draining it, and shutdown must stay idempotent afterwards.
    must_finish_within("quiesce-then-shutdown", 120, || {
        for iter in 0..10u64 {
            let mut rt = Runtime::new(RuntimeConfig::new(2000 + iter).with_workers(2));
            let ids = settled_ring(&rt, 16);
            for (q, &id) in ids.iter().enumerate() {
                rt.inject(
                    id,
                    Command::StartQuery {
                        qid: q as u64,
                        key: Id::new(q as u64 * 777_777),
                    },
                );
            }
            rt.quiesce();
            rt.shutdown();
            rt.shutdown(); // idempotent: second call must be a no-op
        }
    });
}

#[test]
fn shutdown_with_gossip_and_churn_in_flight() {
    // Gossip fan-out plus peer removal mid-flight: removed mailboxes
    // reclaim their pending counts, and the teardown still converges.
    must_finish_within("gossip+churn shutdown", 120, || {
        for iter in 0..10u64 {
            let mut rt = Runtime::new(RuntimeConfig::new(3000 + iter).with_workers(3));
            let ids = settled_ring(&rt, 20);
            rt.gossip_round();
            // Crash a third of the ring while gossip is still in the air.
            for &id in ids.iter().step_by(3) {
                rt.remove_peer(id);
            }
            rt.gossip_round();
            rt.shutdown();
        }
    });
}

#[test]
fn faulted_storm_counters_reconcile_at_quiescence() {
    // Under a lossy, duplicating plan every envelope must still land in
    // exactly one accounting bucket once the network settles:
    // sent == delivered + dropped + bounced.
    must_finish_within("faulted-storm reconciliation", 120, || {
        for iter in 0..5u64 {
            let plan = FaultPlan::new(7000 + iter)
                .with_drop(0.05)
                .with_duplication(0.05)
                .with_blackhole(true);
            let mut rt = Runtime::new(
                RuntimeConfig::new(5000 + iter)
                    .with_workers(1 + (iter as usize % 4))
                    .with_fault_plan(plan),
            );
            // Bootstrap directly — joins under loss are exercised by the
            // equivalence tests; this test is about the accounting.
            let ids: Vec<Id> = (0..24u64).map(|i| Id::new((i + 1) * 1_000_003)).collect();
            let n = ids.len();
            for &id in &ids {
                rt.spawn_peer(id);
            }
            for (k, &id) in ids.iter().enumerate() {
                let succs: Vec<Id> = (1..=3).map(|j| ids[(k + j) % n]).collect();
                rt.inject(
                    id,
                    Command::Bootstrap {
                        pred: ids[(k + n - 1) % n],
                        succs: succs.clone(),
                        known: succs,
                    },
                );
            }
            rt.quiesce();
            let mut qid = 0u64;
            for &id in &ids {
                for k in 0..4u64 {
                    rt.inject(
                        id,
                        Command::StartQuery {
                            qid,
                            key: Id::new(k.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                        },
                    );
                    qid += 1;
                }
            }
            rt.settle(256);
            let s = rt.stats();
            assert!(s.dropped > 0, "plan must have dropped something");
            assert_eq!(
                s.sent,
                s.delivered + s.dropped + s.bounced,
                "every envelope must land in exactly one bucket"
            );
            rt.shutdown();
        }
    });
}

#[test]
fn drop_without_explicit_shutdown_joins_the_pool() {
    must_finish_within("drop teardown", 60, || {
        for iter in 0..10u64 {
            let rt = Runtime::new(RuntimeConfig::new(4000 + iter).with_workers(4));
            let ids = settled_ring(&rt, 12);
            for (q, &id) in ids.iter().enumerate() {
                rt.inject(
                    id,
                    Command::StartQuery {
                        qid: q as u64,
                        key: Id::new(q as u64 * 31_337),
                    },
                );
            }
            drop(rt); // Drop impl must join all workers
        }
    });
}
