//! Terminal line plots.
//!
//! The repro binaries print their figures as ASCII so a run is legible in
//! the shell; the CSVs carry the precise numbers. Multiple series share
//! one canvas with per-series glyphs and a legend.

use crate::series::Series;
use std::fmt::Write as _;

/// Glyphs assigned to series, in order.
const GLYPHS: &[char] = &['o', '*', '+', 'x', '#', '@'];

/// Renders series onto a `width × height` character canvas with y-axis
/// labels and a legend line.
pub fn plot(series: &[Series], width: usize, height: usize, title: &str) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if pts.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // Pad degenerate ranges so single points and flat lines render.
    if x_min == x_max {
        x_max += 1.0;
    }
    if y_min == y_max {
        y_max += 1.0;
    }
    // Always show y=0 context for cost curves unless values are far away.
    if y_min > 0.0 && y_min < y_max * 0.5 {
        y_min = 0.0;
    }

    let mut canvas = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            canvas[row][cx.min(width - 1)] = glyph;
        }
    }
    for (i, row) in canvas.iter().enumerate() {
        let y_val = y_max - (y_max - y_min) * i as f64 / (height - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{y_val:>8.1} |{line}");
    }
    let _ = writeln!(out, "         +{}", "-".repeat(width));
    let _ = writeln!(out, "          x: {x_min:.0} .. {x_max:.0}");
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "          {} = {}", GLYPHS[si % GLYPHS.len()], s.label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_points_with_glyphs_and_legend() {
        let mut a = Series::new("alpha");
        a.push(0.0, 0.0);
        a.push(10.0, 10.0);
        let mut b = Series::new("beta");
        b.push(5.0, 5.0);
        let s = plot(&[a, b], 40, 10, "test plot");
        assert!(s.contains("test plot"));
        assert!(s.contains('o'), "first series glyph");
        assert!(s.contains('*'), "second series glyph");
        assert!(s.contains("o = alpha"));
        assert!(s.contains("* = beta"));
        assert!(s.contains("x: 0 .. 10"));
    }

    #[test]
    fn empty_series_say_no_data() {
        let s = plot(&[Series::new("empty")], 40, 10, "t");
        assert!(s.contains("(no data)"));
    }

    #[test]
    fn single_point_renders() {
        let mut a = Series::new("dot");
        a.push(3.0, 7.0);
        let s = plot(&[a], 30, 8, "single");
        assert!(s.contains('o'));
    }

    #[test]
    fn flat_line_renders() {
        let mut a = Series::new("flat");
        for x in 0..10 {
            a.push(x as f64, 4.0);
        }
        let s = plot(&[a], 40, 6, "flat");
        assert!(s.matches('o').count() >= 5);
    }

    #[test]
    fn canvas_dimensions_respected() {
        let mut a = Series::new("a");
        a.push(0.0, 0.0);
        a.push(1.0, 1.0);
        let s = plot(&[a], 50, 12, "dims");
        // 12 canvas rows, each beginning with a y label and '|'
        let canvas_rows = s.lines().filter(|l| l.contains('|')).count();
        assert_eq!(canvas_rows, 12);
    }
}
