//! # oscar-analytics — statistics and reporting for the experiment harness
//!
//! Everything the repro binaries need to turn simulator observations into
//! the paper's tables and figures:
//!
//! * [`stats`] — means, variances, percentiles, confidence intervals;
//! * [`histogram`] — linear and logarithmic binning (Figure 1(a) is a
//!   log-log pdf);
//! * [`series`] — labelled `(x, y)` series with CSV and Markdown rendering;
//! * [`ascii`] — quick terminal line plots so a repro run is readable
//!   without leaving the shell;
//! * [`degree_load`] — the Figure 1(b) analysis: per-peer relative degree
//!   load and total degree-volume utilisation.

pub mod ascii;
pub mod degree_load;
pub mod histogram;
pub mod series;
pub mod stats;
pub mod streaming;

pub use degree_load::{degree_load_curve, degree_volume_utilization};
pub use histogram::Histogram;
pub use series::Series;
pub use stats::{mean, percentile, std_dev, Summary};
pub use streaming::{streamed_quantile, P2Quantile};
