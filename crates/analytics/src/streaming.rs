//! Streaming statistics for measurement windows.
//!
//! The estimator itself ([`P2Quantile`]) lives in `oscar-types` so the
//! simulator's query batches can stream their percentiles without a
//! dependency cycle (`oscar-analytics` depends on `oscar-sim`); this
//! module is its analytics-facing home and carries the property tests
//! against the exact [`percentile`](crate::percentile) oracle.

pub use oscar_types::P2Quantile;

/// Runs a whole sample through a fresh estimator — the one-shot
/// convenience for code that has the data in hand but wants the same
/// estimate the streaming path produces.
pub fn streamed_quantile(xs: &[f64], p: f64) -> f64 {
    let mut est = P2Quantile::new(p);
    for &x in xs {
        est.observe(x);
    }
    est.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Exact nearest-rank oracle (1-based rank `⌈p·len⌉`), the rule the
    /// estimator must reproduce verbatim on bootstrap-sized samples.
    fn nearest_rank(xs: &[f64], p: f64) -> f64 {
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((p * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    proptest! {
        #[test]
        fn estimate_is_bounded_by_the_sample(
            xs in prop::collection::vec(0u32..10_000, 1..400),
            pq in 1u32..100,
        ) {
            let xs: Vec<f64> = xs.into_iter().map(f64::from).collect();
            let p = pq as f64 / 100.0;
            let v = streamed_quantile(&xs, p);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo && v <= hi, "estimate {v} outside [{lo}, {hi}]");
        }

        #[test]
        fn bootstrap_samples_match_nearest_rank_exactly(
            xs in prop::collection::vec(0u32..10_000, 1..6),
            pq in 1u32..100,
        ) {
            let xs: Vec<f64> = xs.into_iter().map(f64::from).collect();
            let p = pq as f64 / 100.0;
            prop_assert_eq!(streamed_quantile(&xs, p), nearest_rank(&xs, p));
        }

        #[test]
        fn constant_streams_estimate_the_constant(
            x in 0u32..10_000,
            n in 1usize..300,
            pq in 1u32..100,
        ) {
            let xs = vec![x as f64; n];
            prop_assert_eq!(streamed_quantile(&xs, pq as f64 / 100.0), x as f64);
        }

        #[test]
        fn count_and_extremes_are_exact(
            xs in prop::collection::vec(0u32..10_000, 1..400),
        ) {
            let mut est = P2Quantile::new(0.5);
            for &x in &xs {
                est.observe(x as f64);
            }
            prop_assert_eq!(est.count(), xs.len() as u64);
            let lo = *xs.iter().min().unwrap() as f64;
            let hi = *xs.iter().max().unwrap() as f64;
            prop_assert_eq!(est.min(), lo);
            prop_assert_eq!(est.max(), hi);
        }
    }

    #[test]
    fn permuted_grid_median_converges_close_to_truth() {
        // A scrambled 0..=2000 grid: the true median is 1000; P² must
        // land within a few percent of the range.
        let xs: Vec<f64> = (0..=2000u64)
            .map(|i| (i.wrapping_mul(977) % 2001) as f64)
            .collect();
        let v = streamed_quantile(&xs, 0.5);
        assert!((v - 1000.0).abs() < 60.0, "median estimate {v}");
    }
}
