//! Scalar statistics.

/// Arithmetic mean (0 for an empty slice — experiment code treats "no
/// observations" as a zero row, never as NaN poisoning a report).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `q`-quantile (`q ∈ [0,1]`) by nearest-rank on a copy of the data.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN in stats"));
    let q = q.clamp(0.0, 1.0);
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// Five-number-ish summary of a sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Observation count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarises a sample (all zeros for an empty one).
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                p50: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min,
            p50: percentile(xs, 0.5),
            p95: percentile(xs, 0.95),
            max,
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval of
    /// the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero_not_nan() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&xs, 2.0), 5.0, "clamped");
    }

    #[test]
    fn percentile_does_not_mutate_order_sensitivity() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.5), 3.0);
    }

    #[test]
    fn summary_fields_consistent() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!(s.p50 >= 50.0 && s.p50 <= 51.0);
        assert!(s.p95 >= 94.0 && s.p95 <= 96.0);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert_eq!(s.p50, 42.0);
    }
}
