//! Linear and logarithmic histograms.

/// A histogram over `f64` observations.
#[derive(Clone, Debug)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    /// Observations outside `[first_edge, last_edge)`.
    out_of_range: u64,
}

impl Histogram {
    /// Linear bins: `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// If `bins == 0` or `lo >= hi`.
    pub fn linear(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && lo < hi, "invalid histogram range");
        let w = (hi - lo) / bins as f64;
        let edges = (0..=bins).map(|i| lo + w * i as f64).collect();
        Histogram {
            edges,
            counts: vec![0; bins],
            total: 0,
            out_of_range: 0,
        }
    }

    /// Logarithmic bins: `per_decade` bins per factor of 10 over
    /// `[lo, hi)`; both bounds must be positive.
    pub fn logarithmic(lo: f64, hi: f64, per_decade: usize) -> Self {
        assert!(per_decade > 0 && lo > 0.0 && lo < hi, "invalid log range");
        let decades = (hi / lo).log10();
        let bins = (decades * per_decade as f64).ceil() as usize;
        let ratio = 10f64.powf(1.0 / per_decade as f64);
        let mut edges = Vec::with_capacity(bins + 1);
        let mut e = lo;
        for _ in 0..=bins {
            edges.push(e);
            e *= ratio;
        }
        Histogram {
            edges,
            counts: vec![0; bins],
            total: 0,
            out_of_range: 0,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        let lo = self.edges[0];
        let hi = *self.edges.last().expect("edges non-empty");
        if !(lo..hi).contains(&x) {
            self.out_of_range += 1;
            return;
        }
        // binary search for the bin
        let idx = match self
            .edges
            .binary_search_by(|e| e.partial_cmp(&x).expect("no NaN"))
        {
            Ok(i) => i.min(self.counts.len() - 1),
            Err(i) => i - 1,
        };
        self.counts[idx] += 1;
    }

    /// Adds many observations.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Total observations (including out-of-range ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations that fell outside the histogram range.
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// `(bin_center, count)` pairs.
    pub fn counts(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| ((self.edges[i] + self.edges[i + 1]) / 2.0, c))
    }

    /// `(bin_center, probability_density)` pairs: count normalised by total
    /// observations *and* bin width, i.e. a proper pdf estimate (what
    /// Figure 1(a) plots on log axes).
    pub fn pdf(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let total = self.total.max(1) as f64;
        self.counts.iter().enumerate().map(move |(i, &c)| {
            let w = self.edges[i + 1] - self.edges[i];
            (
                (self.edges[i] + self.edges[i + 1]) / 2.0,
                c as f64 / (total * w),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        h.extend([0.0, 0.5, 1.0, 9.99]);
        assert_eq!(h.total(), 4);
        let counts: Vec<u64> = h.counts().map(|(_, c)| c).collect();
        assert_eq!(counts[0], 2); // 0.0, 0.5
        assert_eq!(counts[1], 1); // 1.0
        assert_eq!(counts[9], 1); // 9.99
    }

    #[test]
    fn out_of_range_tracked_not_binned() {
        let mut h = Histogram::linear(0.0, 1.0, 4);
        h.extend([-0.1, 1.0, 0.5]);
        assert_eq!(h.out_of_range(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn log_bins_grow_geometrically() {
        let h = Histogram::logarithmic(1.0, 1000.0, 1);
        assert_eq!(h.bins(), 3);
        let centers: Vec<f64> = h.counts().map(|(c, _)| c).collect();
        assert!(centers[0] < 10.0 && centers[2] > 100.0);
    }

    #[test]
    fn log_histogram_bins_degrees_like_fig1a() {
        // Degrees 1..=150 at 5 bins/decade: every degree lands in range.
        let mut h = Histogram::logarithmic(1.0, 200.0, 5);
        for d in 1..=150 {
            h.add(d as f64);
        }
        assert_eq!(h.out_of_range(), 0);
        assert_eq!(h.total(), 150);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let mut h = Histogram::linear(0.0, 1.0, 20);
        for i in 0..1000 {
            h.add((i as f64 + 0.5) / 1000.0);
        }
        let integral: f64 = h.pdf().map(|(_, density)| density * (1.0 / 20.0)).sum();
        assert!((integral - 1.0).abs() < 1e-9, "integral {integral}");
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn zero_bins_panics() {
        Histogram::linear(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "invalid log range")]
    fn log_with_zero_lo_panics() {
        Histogram::logarithmic(0.0, 10.0, 3);
    }
}
