//! Figure 1(b) analysis: relative degree load and degree-volume
//! utilisation.
//!
//! For each live peer the paper plots the ratio `actual in-degree /
//! available in-degree (ρ_in_max)`, peers sorted by the ratio — a curve
//! that hugs 1.0 when the overlay exploits the heterogeneous capacity well.
//! The scalar headline is the **degree volume utilisation**: total
//! established in-links over total offered in-capacity (Oscar ≈ 85%,
//! Mercury ≈ 61% in the paper).

use oscar_sim::Network;

/// Sorted per-peer relative degree load (ascending), one value per live
/// peer: `in_degree / ρ_in_max`.
pub fn degree_load_curve(net: &Network) -> Vec<f64> {
    let mut ratios: Vec<f64> = net
        .degree_load_snapshot()
        .into_iter()
        .map(|(used, cap)| {
            if cap == 0 {
                0.0
            } else {
                used as f64 / cap as f64
            }
        })
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    ratios
}

/// Total degree-volume utilisation: `Σ in_degree / Σ ρ_in_max` over live
/// peers, in `[0, 1]`.
pub fn degree_volume_utilization(net: &Network) -> f64 {
    let snapshot = net.degree_load_snapshot();
    let used: u64 = snapshot.iter().map(|&(u, _)| u as u64).sum();
    let cap: u64 = snapshot.iter().map(|&(_, c)| c as u64).sum();
    if cap == 0 {
        0.0
    } else {
        used as f64 / cap as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_degree::DegreeCaps;
    use oscar_sim::{FaultModel, PeerIdx};
    use oscar_types::Id;

    fn net_with_caps(caps: &[(u32, u32)]) -> Network {
        let mut net = Network::new(FaultModel::StabilizedRing);
        for (i, &(rho_in, rho_out)) in caps.iter().enumerate() {
            net.add_peer(
                Id::new((i as u64 + 1) * 1000),
                DegreeCaps { rho_in, rho_out },
            )
            .unwrap();
        }
        net
    }

    #[test]
    fn utilization_counts_links_over_capacity() {
        let mut net = net_with_caps(&[(2, 8), (2, 8), (2, 8), (2, 8)]);
        // 3 links into a total capacity of 8
        net.try_link(PeerIdx(0), PeerIdx(1)).unwrap();
        net.try_link(PeerIdx(2), PeerIdx(1)).unwrap();
        net.try_link(PeerIdx(0), PeerIdx(3)).unwrap();
        assert!((degree_volume_utilization(&net) - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_sorted_and_sized() {
        let mut net = net_with_caps(&[(4, 8), (1, 8), (2, 8)]);
        net.try_link(PeerIdx(0), PeerIdx(1)).unwrap(); // peer1: 1/1
        net.try_link(PeerIdx(1), PeerIdx(2)).unwrap(); // peer2: 1/2
        let curve = degree_load_curve(&net);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn dead_peers_excluded() {
        let mut net = net_with_caps(&[(2, 8), (2, 8), (2, 8)]);
        net.try_link(PeerIdx(0), PeerIdx(1)).unwrap();
        net.kill(PeerIdx(2)).unwrap();
        assert_eq!(degree_load_curve(&net).len(), 2);
        // capacity now 4, used 1
        assert!((degree_volume_utilization(&net) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_network_is_zero() {
        let net = Network::new(FaultModel::StabilizedRing);
        assert_eq!(degree_volume_utilization(&net), 0.0);
        assert!(degree_load_curve(&net).is_empty());
    }
}
