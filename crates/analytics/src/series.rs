//! Labelled data series with CSV and Markdown rendering.
//!
//! A [`Series`] is one curve of a figure: `(x, y)` points plus a label.
//! The repro binaries collect one series per curve and render them as a
//! wide table (x column + one y column per series) — the exact rows the
//! paper plots.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One labelled curve.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Curve label (legend entry).
    pub label: String,
    /// The points, in insertion order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Empty series with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at exactly `x`, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(px, _)| px == x)
            .map(|&(_, y)| y)
    }
}

/// Renders aligned series as CSV: header `x,<label1>,<label2>,…`, one row
/// per distinct x (union of all series; missing values are empty cells).
pub fn to_csv(series: &[Series]) -> String {
    let xs = x_union(series);
    let mut out = String::new();
    out.push('x');
    for s in series {
        out.push(',');
        out.push_str(&escape_csv(&s.label));
    }
    out.push('\n');
    for &x in &xs {
        let _ = write!(out, "{x}");
        for s in series {
            out.push(',');
            if let Some(y) = s.y_at(x) {
                let _ = write!(out, "{y}");
            }
        }
        out.push('\n');
    }
    out
}

/// Renders aligned series as a Markdown table (for EXPERIMENTS.md).
pub fn to_markdown(series: &[Series], x_header: &str) -> String {
    let xs = x_union(series);
    let mut out = String::new();
    let _ = write!(out, "| {x_header} |");
    for s in series {
        let _ = write!(out, " {} |", s.label);
    }
    out.push('\n');
    let _ = write!(out, "|---|");
    for _ in series {
        out.push_str("---|");
    }
    out.push('\n');
    for &x in &xs {
        let _ = write!(out, "| {x} |");
        for s in series {
            match s.y_at(x) {
                Some(y) => {
                    let _ = write!(out, " {y:.2} |");
                }
                None => {
                    let _ = write!(out, " |");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Writes CSV to a file, creating parent directories.
pub fn write_csv(series: &[Series], path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, to_csv(series))
}

fn x_union(series: &[Series]) -> Vec<f64> {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN x values"));
    xs.dedup();
    xs
}

fn escape_csv(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> Vec<Series> {
        let mut a = Series::new("oscar");
        a.push(1000.0, 5.2);
        a.push(2000.0, 5.9);
        let mut b = Series::new("mercury");
        b.push(1000.0, 9.1);
        b.push(3000.0, 12.4);
        vec![a, b]
    }

    #[test]
    fn csv_has_header_and_union_rows() {
        let csv = to_csv(&sample_series());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,oscar,mercury");
        assert_eq!(lines.len(), 4, "3 distinct x values + header");
        assert_eq!(lines[1], "1000,5.2,9.1");
        assert_eq!(lines[2], "2000,5.9,");
        assert_eq!(lines[3], "3000,,12.4");
    }

    #[test]
    fn csv_escapes_labels() {
        let mut s = Series::new("weird,\"label\"");
        s.push(1.0, 2.0);
        let csv = to_csv(&[s]);
        assert!(csv.starts_with("x,\"weird,\"\"label\"\"\""));
    }

    #[test]
    fn markdown_table_shape() {
        let md = to_markdown(&sample_series(), "network size");
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| network size | oscar | mercury |");
        assert!(lines[1].starts_with("|---|"));
        assert!(lines[2].contains("5.20"));
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn y_at_exact_match_only() {
        let s = &sample_series()[0];
        assert_eq!(s.y_at(1000.0), Some(5.2));
        assert_eq!(s.y_at(1500.0), None);
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("oscar_analytics_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        write_csv(&sample_series(), &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x,oscar,mercury"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
