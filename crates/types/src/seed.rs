//! Hierarchical deterministic seed derivation.
//!
//! Every figure in the paper is regenerated from a single experiment seed.
//! To keep components statistically independent *and* reproducible when the
//! experiment structure changes (adding a measurement must not shift the
//! random stream of an unrelated peer), seeds are derived as a tree: the
//! experiment seeds the growth driver, which seeds each peer, which seeds
//! each stochastic sub-activity (median sampling, link acquisition, …).
//!
//! Mixing uses the SplitMix64 finaliser, which is a bijective avalanche
//! function — distinct `(parent, label)` pairs give well-spread children.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A node in the deterministic seed tree.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SeedTree {
    state: u64,
}

/// SplitMix64 finaliser: bijective, strong avalanche.
///
/// Public because the protocol crate's token-carried RNG streams use the
/// same mixer (a walk token must realise the same random sequence no
/// matter which peer, thread, or driver advances it).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedTree {
    /// Root of a seed tree for one experiment.
    pub fn new(root_seed: u64) -> Self {
        SeedTree {
            state: mix64(root_seed),
        }
    }

    /// Child seed for a labelled sub-activity.
    ///
    /// Children with distinct labels are independent; the same label always
    /// yields the same child.
    pub fn child(&self, label: u64) -> SeedTree {
        SeedTree {
            state: mix64(self.state ^ mix64(label.wrapping_add(0xA5A5_A5A5_A5A5_A5A5))),
        }
    }

    /// Two-level child, convenient for `(peer, activity)` addressing.
    pub fn child2(&self, a: u64, b: u64) -> SeedTree {
        self.child(a).child(b)
    }

    /// The raw derived seed value.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// A fast deterministic RNG seeded from this node.
    ///
    /// `SmallRng` (xoshiro-family) is used throughout the simulator: the
    /// workload is Monte-Carlo style and does not need cryptographic
    /// strength, but it does need speed — a full-figure run performs
    /// hundreds of millions of walk steps.
    pub fn rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn same_path_same_seed() {
        let a = SeedTree::new(42).child(1).child(7);
        let b = SeedTree::new(42).child(1).child(7);
        assert_eq!(a.seed(), b.seed());
    }

    #[test]
    fn different_labels_different_seeds() {
        let root = SeedTree::new(42);
        assert_ne!(root.child(0).seed(), root.child(1).seed());
        assert_ne!(root.child(0).seed(), root.seed());
    }

    #[test]
    fn child2_is_nested_child() {
        let root = SeedTree::new(7);
        assert_eq!(root.child2(3, 9).seed(), root.child(3).child(9).seed());
    }

    #[test]
    fn no_collisions_over_many_children() {
        let root = SeedTree::new(123);
        let mut seen = HashSet::new();
        for label in 0..10_000u64 {
            assert!(
                seen.insert(root.child(label).seed()),
                "collision at {label}"
            );
        }
    }

    #[test]
    fn sibling_rngs_are_decorrelated() {
        // Crude independence check: the first draws of 1000 sibling RNGs
        // should look uniform (mean near 0.5 on the unit interval).
        let root = SeedTree::new(99);
        let mean: f64 = (0..1000)
            .map(|i| root.child(i).rng().gen::<f64>())
            .sum::<f64>()
            / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} too far from 0.5");
    }

    #[test]
    fn distinct_roots_diverge() {
        let a = SeedTree::new(1).child(5);
        let b = SeedTree::new(2).child(5);
        assert_ne!(a.seed(), b.seed());
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut r1 = SeedTree::new(11).child(3).rng();
        let mut r2 = SeedTree::new(11).child(3).rng();
        for _ in 0..100 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }
}
