//! # oscar-types — identifier-space primitives
//!
//! Foundation crate for the Oscar overlay reproduction. It defines the
//! one-dimensional circular identifier space all other crates operate on:
//!
//! * [`Id`] — a position on the ring `[0, 2^64)`, used both for peer
//!   identifiers and data keys (Oscar is order-preserving: keys and peers
//!   share the space, so a single type avoids pointless conversions).
//! * [`Arc`] — a wrap-around, half-open arc `[start, start+len)` of the
//!   ring, the unit in which Oscar's logarithmic partitions are expressed.
//! * [`SeedTree`] — hierarchical deterministic seed derivation so that every
//!   experiment, peer, and stochastic sub-activity gets an independent but
//!   reproducible RNG stream.
//! * [`labels`] — the generated registry of `LBL_*` seed-derivation labels
//!   (one module per derivation scope), maintained by `oscar-lint`.
//! * [`Error`] — the shared error type of the workspace.
//!
//! Everything here is plain data with no I/O and no global state.

pub mod arc;
pub mod error;
pub mod id;
pub mod labels;
pub mod quantile;
pub mod seed;

pub use arc::Arc;
pub use error::{Error, Result};
pub use id::Id;
pub use quantile::P2Quantile;
pub use seed::{mix64, SeedTree};

/// Number of distinct positions on the identifier ring (`2^64`), as `u128`.
///
/// Arc lengths may span the full ring, which does not fit in `u64`; all arc
/// arithmetic is therefore done in `u128` against this constant.
pub const RING_SIZE: u128 = 1u128 << 64;
