//! GENERATED — the workspace seed-label registry.
//!
//! Regenerate with `cargo run -p oscar-lint -- --write-registry`; the
//! lint gate (`oscar-lint`) rejects `const LBL_*` declarations anywhere
//! else and duplicate values within a scope. One module = one
//! **derivation scope** (the labels address children of a single
//! `SeedTree` node, so equal values within a module would correlate
//! streams; across modules the parents differ and reuse is harmless).
//!
//! Values are part of the reproduction contract: changing one changes
//! every committed seeded artifact downstream of its stream.

/// Seed-tree labels of derivation scope `bench_experiments`.
pub mod bench_experiments {
    /// Label `LBL_GROWTH` (= 1).
    pub const LBL_GROWTH: u64 = 1;
    /// Label `LBL_QUERIES` (= 2).
    pub const LBL_QUERIES: u64 = 2;
    /// Label `LBL_CHURN` (= 3).
    pub const LBL_CHURN: u64 = 3;
    /// Label `LBL_STEADY` (= 4).
    pub const LBL_STEADY: u64 = 4;
    /// Label `LBL_PHASE` (= 5).
    pub const LBL_PHASE: u64 = 5;
    /// Label `LBL_MACHINE` (= 6).
    pub const LBL_MACHINE: u64 = 6;
}

/// Seed-tree labels of derivation scope `bench_repro_faults`.
pub mod bench_repro_faults {
    /// Label `LBL_IDS` (= 469).
    pub const LBL_IDS: u64 = 0x1D5;
    /// Label `LBL_KEYS` (= 20037).
    pub const LBL_KEYS: u64 = 0x4E45;
}

/// Seed-tree labels of derivation scope `bench_repro_saturation`.
pub mod bench_repro_saturation {
    /// Label `LBL_IDS` (= 469).
    pub const LBL_IDS: u64 = 0x1D5;
    /// Label `LBL_KEYS` (= 20037).
    pub const LBL_KEYS: u64 = 0x4E45;
}

/// Seed-tree labels of derivation scope `bench_scenario`.
pub mod bench_scenario {
    /// Label `LBL_RUN` (= 1).
    pub const LBL_RUN: u64 = 1;
    /// Label `LBL_PHASE` (= 2).
    pub const LBL_PHASE: u64 = 2;
    /// Label `LBL_WINDOW` (= 3).
    pub const LBL_WINDOW: u64 = 3;
    /// Label `LBL_GROW` (= 4).
    pub const LBL_GROW: u64 = 4;
}

/// Seed-tree labels of derivation scope `protocol_machine`.
pub mod protocol_machine {
    /// Label `LBL_LINK` (= 76).
    pub const LBL_LINK: u64 = 0x4C;
    /// Label `LBL_RETRY` (= 82).
    pub const LBL_RETRY: u64 = 0x52;
    /// Label `LBL_WALK` (= 87).
    pub const LBL_WALK: u64 = 0x57;
    /// Label `LBL_PEER` (= 158).
    pub const LBL_PEER: u64 = 0x9E;
}

/// Seed-tree labels of derivation scope `runtime`.
pub mod runtime {
    /// Label `LBL_WORKER` (= 176).
    pub const LBL_WORKER: u64 = 0xB0;
    /// Label `LBL_GOSSIP` (= 177).
    pub const LBL_GOSSIP: u64 = 0xB1;
}

/// Seed-tree labels of derivation scope `sim_churn_engine`.
pub mod sim_churn_engine {
    /// Label `LBL_JOIN_GAPS` (= 1).
    pub const LBL_JOIN_GAPS: u64 = 1;
    /// Label `LBL_CRASH_GAPS` (= 2).
    pub const LBL_CRASH_GAPS: u64 = 2;
    /// Label `LBL_DEPART_GAPS` (= 3).
    pub const LBL_DEPART_GAPS: u64 = 3;
    /// Label `LBL_JOIN` (= 4).
    pub const LBL_JOIN: u64 = 4;
    /// Label `LBL_CRASH_PICK` (= 5).
    pub const LBL_CRASH_PICK: u64 = 5;
    /// Label `LBL_DEPART_PICK` (= 6).
    pub const LBL_DEPART_PICK: u64 = 6;
    /// Label `LBL_REWIRE` (= 7).
    pub const LBL_REWIRE: u64 = 7;
    /// Label `LBL_MEASURE` (= 8).
    pub const LBL_MEASURE: u64 = 8;
    /// Label `LBL_REPAIR` (= 9).
    pub const LBL_REPAIR: u64 = 9;
}

/// Seed-tree labels of derivation scope `sim_churn_machine`.
pub mod sim_churn_machine {
    /// Label `LBL_JOIN_GAPS` (= 1).
    pub const LBL_JOIN_GAPS: u64 = 1;
    /// Label `LBL_CRASH_GAPS` (= 2).
    pub const LBL_CRASH_GAPS: u64 = 2;
    /// Label `LBL_DEPART_GAPS` (= 3).
    pub const LBL_DEPART_GAPS: u64 = 3;
    /// Label `LBL_JOIN` (= 4).
    pub const LBL_JOIN: u64 = 4;
    /// Label `LBL_CRASH_PICK` (= 5).
    pub const LBL_CRASH_PICK: u64 = 5;
    /// Label `LBL_DEPART_PICK` (= 6).
    pub const LBL_DEPART_PICK: u64 = 6;
    /// Label `LBL_MEASURE` (= 8).
    pub const LBL_MEASURE: u64 = 8;
    /// Label `LBL_BOOT` (= 10).
    pub const LBL_BOOT: u64 = 10;
    /// Label `LBL_SPAN` (= 11).
    pub const LBL_SPAN: u64 = 11;
}

/// Seed-tree labels of derivation scope `sim_growth`.
pub mod sim_growth {
    /// Label `LBL_IDS` (= 1).
    pub const LBL_IDS: u64 = 1;
    /// Label `LBL_JOIN` (= 2).
    pub const LBL_JOIN: u64 = 2;
    /// Label `LBL_REWIRE` (= 3).
    pub const LBL_REWIRE: u64 = 3;
    /// Label `LBL_SHUFFLE` (= 4).
    pub const LBL_SHUFFLE: u64 = 4;
}

/// Seed-tree labels of derivation scope `sim_overlay`.
pub mod sim_overlay {
    /// Label `LBL_GROW` (= 10).
    pub const LBL_GROW: u64 = 10;
    /// Label `LBL_REWIRE` (= 11).
    pub const LBL_REWIRE: u64 = 11;
    /// Label `LBL_QUERY` (= 12).
    pub const LBL_QUERY: u64 = 12;
    /// Label `LBL_CHURN` (= 13).
    pub const LBL_CHURN: u64 = 13;
    /// Label `LBL_CONTINUOUS` (= 14).
    pub const LBL_CONTINUOUS: u64 = 14;
}

/// Seed-tree labels of derivation scope `sim_protocol_des`.
pub mod sim_protocol_des {
    /// Label `LBL_CMD` (= 3557).
    pub const LBL_CMD: u64 = 0xDE5;
}

/// Seed-tree labels of derivation scope `sim_scenario_hooks`.
pub mod sim_scenario_hooks {
    /// Label `LBL_BURST` (= 1).
    pub const LBL_BURST: u64 = 1;
    /// Label `LBL_HEAL` (= 2).
    pub const LBL_HEAL: u64 = 2;
}
