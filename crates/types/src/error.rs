//! Workspace-wide error type.
//!
//! The simulator and the overlay algorithms share one small error enum:
//! almost all "errors" in a P2P simulation are *modelled* conditions (a
//! refused link, a dead peer) rather than programming faults, so they are
//! ordinary values that the drivers react to.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the simulator and overlay algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Referenced a peer index that does not exist in the network.
    UnknownPeer(usize),
    /// Operation requires a live peer but the peer has crashed.
    PeerDead(usize),
    /// Operation requires a non-empty ring.
    RingEmpty,
    /// A peer refused a link because its in-degree budget is exhausted.
    LinkRefused {
        /// The refusing peer.
        target: usize,
    },
    /// Greedy routing gave up (only possible in unstabilised fault models).
    RoutingFailed {
        /// Hops spent before giving up.
        hops: u32,
    },
    /// A random-walk sampler could not produce a sample (e.g. the restricted
    /// sub-population is empty or unreachable).
    SamplingFailed {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Invalid experiment or overlay configuration.
    InvalidConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownPeer(idx) => write!(f, "unknown peer index {idx}"),
            Error::PeerDead(idx) => write!(f, "peer {idx} is dead"),
            Error::RingEmpty => write!(f, "the ring is empty"),
            Error::LinkRefused { target } => {
                write!(
                    f,
                    "peer {target} refused the link (in-degree budget exhausted)"
                )
            }
            Error::RoutingFailed { hops } => {
                write!(f, "routing failed after {hops} hops")
            }
            Error::SamplingFailed { reason } => {
                write!(f, "sampling failed: {reason}")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::UnknownPeer(3), "unknown peer index 3"),
            (Error::PeerDead(9), "peer 9 is dead"),
            (Error::RingEmpty, "the ring is empty"),
            (
                Error::LinkRefused { target: 7 },
                "peer 7 refused the link (in-degree budget exhausted)",
            ),
            (
                Error::RoutingFailed { hops: 12 },
                "routing failed after 12 hops",
            ),
            (
                Error::SamplingFailed {
                    reason: "empty interval",
                },
                "sampling failed: empty interval",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_std_error(_: &dyn std::error::Error) {}
        takes_std_error(&Error::RingEmpty);
    }

    #[test]
    fn invalid_config_carries_message() {
        let e = Error::InvalidConfig("sample size must be > 0".into());
        assert!(e.to_string().contains("sample size"));
    }
}
