//! Streaming quantile estimation: the P² algorithm.
//!
//! Jain & Chlamtac's P² (1985) tracks one quantile of a stream with five
//! markers and O(1) memory — no buffering, no sorting. The measurement
//! windows of the churn engine used to collect every query cost into a
//! `Vec` and sort it per window; at million-peer scale (ROADMAP items 1
//! and 5) those batches are exactly the allocation the engine cannot
//! afford. The estimator lives here in `oscar-types` because both the
//! simulator (per-window stats) and the analytics crate (summaries,
//! property tests against the exact nearest-rank oracle) consume it, and
//! `oscar-analytics` already depends on `oscar-sim`.
//!
//! Exactness: for 5 or fewer observations the estimate *is* the
//! nearest-rank value (the markers are still raw observations). Beyond
//! that the estimate is approximate but always bounded by the observed
//! min and max, and the marker heights stay sorted — so `p50 ≤ p95`
//! comparisons between two estimators on the same stream hold whenever
//! the true quantiles are separated by at least the marker error.

/// Streaming estimator of a single quantile, 40 bytes of state.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    /// The target quantile in (0, 1), e.g. 0.5 or 0.95.
    p: f64,
    /// Observations seen so far.
    count: u64,
    /// Marker heights: q[0] = min, q[4] = max, q[2] ≈ the quantile.
    q: [f64; 5],
    /// Actual marker positions (1-based ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired-position increments per observation.
    dn: [f64; 5],
}

impl P2Quantile {
    /// A fresh estimator for quantile `p` (0 < p < 1). Panics outside
    /// that range — a fixed quantile is a programming constant, not data.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1), got {p}");
        P2Quantile {
            p,
            count: 0,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
        }
    }

    /// The target quantile.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            // Bootstrap: the first five observations are kept sorted
            // verbatim.
            let k = self.count as usize;
            self.q[k] = x;
            self.count += 1;
            let filled = self.count as usize;
            self.q[..filled].sort_by(|a, b| a.partial_cmp(b).expect("finite costs"));
            return;
        }
        self.count += 1;

        // Which cell the observation falls into; extremes adjust the
        // boundary markers themselves.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[j] <= x < q[j+1]
            (1..4).find(|&j| x < self.q[j]).unwrap_or(4) - 1
        };
        for j in (k + 1)..5 {
            self.n[j] += 1.0;
        }
        for j in 0..5 {
            self.np[j] += self.dn[j];
        }

        // Nudge the three interior markers toward their desired ranks.
        for j in 1..4 {
            let d = self.np[j] - self.n[j];
            let right = self.n[j + 1] - self.n[j];
            let left = self.n[j - 1] - self.n[j];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(j, d);
                self.q[j] = if self.q[j - 1] < candidate && candidate < self.q[j + 1] {
                    candidate
                } else {
                    self.linear(j, d)
                };
                self.n[j] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height update for marker `j`.
    fn parabolic(&self, j: usize, d: f64) -> f64 {
        let (nm, n0, np1) = (self.n[j - 1], self.n[j], self.n[j + 1]);
        let (qm, q0, qp1) = (self.q[j - 1], self.q[j], self.q[j + 1]);
        q0 + d / (np1 - nm)
            * ((n0 - nm + d) * (qp1 - q0) / (np1 - n0) + (np1 - n0 - d) * (q0 - qm) / (n0 - nm))
    }

    /// Linear fallback when the parabola would leave the bracket.
    fn linear(&self, j: usize, d: f64) -> f64 {
        let jd = if d > 0.0 { j + 1 } else { j - 1 };
        self.q[j] + d * (self.q[jd] - self.q[j]) / (self.n[jd] - self.n[j])
    }

    /// The current estimate. For 5 or fewer observations this is the
    /// exact nearest-rank quantile; afterwards the P² marker height.
    /// Returns 0.0 before any observation.
    pub fn value(&self) -> f64 {
        match self.count {
            0 => 0.0,
            c if c <= 5 => {
                // Nearest-rank over the raw sorted bootstrap sample.
                let rank = ((self.p * c as f64).ceil() as usize).max(1);
                self.q[rank - 1]
            }
            _ => self.q[2],
        }
    }

    /// Smallest observation so far (0.0 before any).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.q[0]
        }
    }

    /// Largest observation so far (0.0 before any).
    pub fn max(&self) -> f64 {
        match self.count {
            0 => 0.0,
            c if c <= 5 => self.q[c as usize - 1],
            _ => self.q[4],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank oracle (1-based rank `⌈p·len⌉`).
    fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
        let rank = ((p * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn small_samples_are_exact() {
        for p in [0.5, 0.95] {
            let mut est = P2Quantile::new(p);
            let xs = [7.0, 3.0, 9.0, 1.0, 5.0];
            let mut sorted = Vec::new();
            for &x in &xs {
                est.observe(x);
                sorted.push(x);
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                assert_eq!(
                    est.value(),
                    nearest_rank(&sorted, p),
                    "p={p} n={}",
                    sorted.len()
                );
            }
        }
    }

    #[test]
    fn median_of_a_shuffled_range_converges() {
        let mut est = P2Quantile::new(0.5);
        // 0..=1000 in a scrambled deterministic order.
        for i in 0..=1000u64 {
            est.observe((i.wrapping_mul(541) % 1001) as f64);
        }
        assert_eq!(est.count(), 1001);
        let v = est.value();
        assert!(
            (v - 500.0).abs() < 25.0,
            "median estimate {v} too far from 500"
        );
        assert!(est.min() == 0.0 && est.max() == 1000.0);
    }

    #[test]
    fn p95_tracks_the_tail() {
        let mut est = P2Quantile::new(0.95);
        for i in 0..2000u64 {
            est.observe((i.wrapping_mul(733) % 2000) as f64);
        }
        let v = est.value();
        assert!(
            (v - 1900.0).abs() < 60.0,
            "p95 estimate {v} too far from 1900"
        );
    }

    #[test]
    fn estimate_stays_within_observed_range() {
        let mut est = P2Quantile::new(0.9);
        for i in 0..500u64 {
            // A nasty bimodal stream.
            let x = if i % 3 == 0 { 1.0 } else { 1000.0 + i as f64 };
            est.observe(x);
            let v = est.value();
            assert!(
                v >= est.min() && v <= est.max(),
                "estimate {v} escaped the sample range"
            );
        }
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn rejects_degenerate_quantiles() {
        P2Quantile::new(1.0);
    }
}
