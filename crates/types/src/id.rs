//! Positions on the circular identifier space.
//!
//! The identifier space is the ring `[0, 2^64)` with wrap-around. Both peer
//! identifiers and data keys are [`Id`]s; Oscar is an order-preserving
//! overlay, so the two deliberately share one type.
//!
//! Two distance notions matter:
//!
//! * **clockwise distance** `cw_dist(a, b)` — the number of positions walked
//!   from `a` towards increasing identifiers (wrapping) until `b` is reached.
//!   Oscar's partitions and greedy routing are defined clockwise, exactly
//!   like Chord's finger geometry.
//! * **ring distance** `ring_dist(a, b)` — the shorter of the two ways
//!   around, used for diagnostics and bidirectional routing ablations.

use std::fmt;

/// A position on the identifier ring `[0, 2^64)`.
///
/// `Id` is a transparent wrapper over `u64` with ring (modular) geometry.
/// The natural `Ord` instance is the *linear* order of the underlying
/// integer; it is what sorted ring structures use. Distances must go through
/// [`Id::cw_dist`] / [`Id::ring_dist`], never through subtraction of raw
/// values, because of wrap-around.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Id(u64);

impl Id {
    /// The zero position.
    pub const ZERO: Id = Id(0);
    /// The largest position (`2^64 - 1`).
    pub const MAX: Id = Id(u64::MAX);

    /// Wraps a raw `u64` as a ring position.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Id(raw)
    }

    /// The underlying integer.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Maps a point of the unit interval `[0, 1)` onto the ring.
    ///
    /// Values outside `[0, 1)` are wrapped by taking the fractional part;
    /// NaN maps to zero. This is the bridge from analytic key
    /// distributions (which are naturally expressed on `[0,1)`) to the
    /// integer ring.
    pub fn from_unit(x: f64) -> Self {
        if x.is_nan() {
            return Id(0);
        }
        let frac = x - x.floor();
        // 2^64 as f64; the cast saturates but frac < 1.0 keeps us in range.
        let scaled = frac * 18_446_744_073_709_551_616.0;
        if scaled >= 18_446_744_073_709_551_615.0 {
            Id(u64::MAX)
        } else {
            Id(scaled as u64)
        }
    }

    /// Maps the ring position back to the unit interval `[0, 1)`.
    pub fn to_unit(self) -> f64 {
        self.0 as f64 / 18_446_744_073_709_551_616.0
    }

    /// Clockwise distance from `self` to `other`: how far to travel in the
    /// direction of increasing identifiers (wrapping) to reach `other`.
    ///
    /// `cw_dist(a, a) == 0`; for `a != b`,
    /// `cw_dist(a, b) + cw_dist(b, a) == 2^64` (in `u128`).
    #[inline]
    pub fn cw_dist(self, other: Id) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// Shorter-way-around distance between two positions.
    #[inline]
    pub fn ring_dist(self, other: Id) -> u64 {
        let cw = self.cw_dist(other);
        let ccw = other.cw_dist(self);
        cw.min(ccw)
    }

    /// The position reached by walking `offset` steps clockwise.
    ///
    /// Deliberately not `std::ops::Add`: the operand is a *distance*, not
    /// another position, and the semantics are wrapping.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, offset: u64) -> Id {
        Id(self.0.wrapping_add(offset))
    }

    /// The position reached by walking `offset` steps counter-clockwise.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn sub(self, offset: u64) -> Id {
        Id(self.0.wrapping_sub(offset))
    }

    /// True iff `self` lies in the half-open clockwise interval `(from, to]`.
    ///
    /// This is the membership test used for ring responsibility: the peer
    /// with identifier `to` is responsible for every key in
    /// `(predecessor, to]`. When `from == to` the interval is the full ring,
    /// matching the single-peer case where one peer owns everything.
    #[inline]
    pub fn in_cw_open_closed(self, from: Id, to: Id) -> bool {
        if from == to {
            return true;
        }
        // Walk clockwise from `from`; `self` must be reached no later than
        // `to` and must not equal `from` itself.
        let to_self = from.cw_dist(self);
        let to_end = from.cw_dist(to);
        to_self != 0 && to_self <= to_end
    }

    /// True iff `self` lies in the half-open clockwise interval `[from, to)`.
    ///
    /// When `from == to` the interval is the full ring.
    #[inline]
    pub fn in_cw_closed_open(self, from: Id, to: Id) -> bool {
        if from == to {
            return true;
        }
        let to_self = from.cw_dist(self);
        let to_end = from.cw_dist(to);
        to_self < to_end
    }

    /// The point halfway along the clockwise walk from `self` to `other`.
    #[inline]
    pub fn midpoint_cw(self, other: Id) -> Id {
        self.add(self.cw_dist(other) / 2)
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({:#018x})", self.0)
    }
}

impl fmt::Display for Id {
    /// Renders as the unit-interval position with 6 decimals — the most
    /// readable form for skewed key distributions.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.to_unit())
    }
}

impl From<u64> for Id {
    fn from(raw: u64) -> Self {
        Id(raw)
    }
}

impl From<Id> for u64 {
    fn from(id: Id) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cw_dist_basics() {
        let a = Id::new(10);
        let b = Id::new(25);
        assert_eq!(a.cw_dist(b), 15);
        assert_eq!(b.cw_dist(a), u64::MAX - 14); // wraps the long way
        assert_eq!(a.cw_dist(a), 0);
    }

    #[test]
    fn cw_dist_wraps() {
        let a = Id::new(u64::MAX - 4);
        let b = Id::new(5);
        assert_eq!(a.cw_dist(b), 10);
        assert_eq!(a.add(10), b);
    }

    #[test]
    fn ring_dist_symmetric_and_short() {
        let a = Id::new(0);
        let b = Id::new(u64::MAX); // one step counter-clockwise from 0
        assert_eq!(a.ring_dist(b), 1);
        assert_eq!(b.ring_dist(a), 1);
    }

    #[test]
    fn unit_roundtrip_monotone() {
        let xs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.999_999];
        let ids: Vec<Id> = xs.iter().map(|&x| Id::from_unit(x)).collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "from_unit must preserve order");
        }
        for (&x, id) in xs.iter().zip(&ids) {
            assert!((id.to_unit() - x).abs() < 1e-12);
        }
    }

    #[test]
    fn from_unit_edge_cases() {
        assert_eq!(Id::from_unit(0.0), Id::ZERO);
        assert_eq!(Id::from_unit(1.0), Id::ZERO); // wraps
        assert_eq!(Id::from_unit(-0.25), Id::from_unit(0.75));
        assert_eq!(Id::from_unit(f64::NAN), Id::ZERO);
    }

    #[test]
    fn interval_open_closed() {
        let a = Id::new(10);
        let b = Id::new(20);
        assert!(!Id::new(10).in_cw_open_closed(a, b)); // open at from
        assert!(Id::new(11).in_cw_open_closed(a, b));
        assert!(Id::new(20).in_cw_open_closed(a, b)); // closed at to
        assert!(!Id::new(21).in_cw_open_closed(a, b));
        // wrap-around interval (20, 10]
        assert!(Id::new(5).in_cw_open_closed(b, a));
        assert!(Id::new(u64::MAX).in_cw_open_closed(b, a));
        assert!(!Id::new(15).in_cw_open_closed(b, a));
    }

    #[test]
    fn interval_degenerate_is_full_ring() {
        let a = Id::new(42);
        for x in [0u64, 41, 42, 43, u64::MAX] {
            assert!(Id::new(x).in_cw_open_closed(a, a));
            assert!(Id::new(x).in_cw_closed_open(a, a));
        }
    }

    #[test]
    fn midpoint_cw_is_halfway() {
        let a = Id::new(10);
        let b = Id::new(30);
        assert_eq!(a.midpoint_cw(b), Id::new(20));
        // wrap-around midpoint
        let c = Id::new(u64::MAX - 9); // 10 before 0
        let d = Id::new(10);
        assert_eq!(c.midpoint_cw(d), Id::new(0));
    }

    proptest! {
        #[test]
        fn prop_cw_dist_antisymmetric(a: u64, b: u64) {
            let (a, b) = (Id::new(a), Id::new(b));
            if a != b {
                let sum = a.cw_dist(b) as u128 + b.cw_dist(a) as u128;
                prop_assert_eq!(sum, crate::RING_SIZE);
            }
        }

        #[test]
        fn prop_add_then_dist(a: u64, d: u64) {
            let a = Id::new(a);
            prop_assert_eq!(a.cw_dist(a.add(d)), d);
        }

        #[test]
        fn prop_ring_dist_at_most_half(a: u64, b: u64) {
            let (a, b) = (Id::new(a), Id::new(b));
            prop_assert!((a.ring_dist(b) as u128) <= crate::RING_SIZE / 2);
            prop_assert_eq!(a.ring_dist(b), b.ring_dist(a));
        }

        #[test]
        fn prop_membership_complement(x: u64, from: u64, to: u64) {
            let (x, from, to) = (Id::new(x), Id::new(from), Id::new(to));
            prop_assume!(from != to);
            // (from, to] and (to, from] partition the ring
            prop_assert!(
                x.in_cw_open_closed(from, to) != x.in_cw_open_closed(to, from)
            );
        }

        #[test]
        fn prop_midpoint_between(a: u64, b: u64) {
            let (a, b) = (Id::new(a), Id::new(b));
            let m = a.midpoint_cw(b);
            prop_assert!(a.cw_dist(m) <= a.cw_dist(b));
        }
    }
}
