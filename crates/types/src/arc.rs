//! Wrap-around arcs of the identifier ring.
//!
//! Oscar's logarithmic partitions `A_1 … A_k` are arcs of the ring measured
//! clockwise from the partitioning node. An [`Arc`] is half-open
//! `[start, start + len)`, where `len` may be anything from `0` (empty) to
//! the full ring (`2^64`, hence stored as `u128`).

use crate::{Id, RING_SIZE};
use rand::Rng;

/// A half-open clockwise arc `[start, start + len)` of the ring.
///
/// `len == 0` is the empty arc; `len == RING_SIZE` is the full ring. Arcs
/// are plain values: cheap to copy, no allocation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Arc {
    start: Id,
    len: u128,
}

impl Arc {
    /// The full ring (starting at an arbitrary canonical point).
    pub const FULL: Arc = Arc {
        start: Id::ZERO,
        len: RING_SIZE,
    };

    /// The empty arc.
    pub const EMPTY: Arc = Arc {
        start: Id::ZERO,
        len: 0,
    };

    /// Arc of `len` positions beginning (inclusive) at `start`.
    ///
    /// # Panics
    /// If `len > RING_SIZE`.
    pub fn new(start: Id, len: u128) -> Self {
        assert!(len <= RING_SIZE, "arc longer than the ring");
        Arc { start, len }
    }

    /// The half-open arc `[from, to)`. If `from == to` the arc is **empty**
    /// (use [`Arc::FULL`] for the whole ring).
    pub fn between(from: Id, to: Id) -> Self {
        Arc {
            start: from,
            len: from.cw_dist(to) as u128,
        }
    }

    /// The arc of positions whose clockwise distance from `origin` lies in
    /// `[lo, hi)`. This is how Oscar partitions are naturally expressed:
    /// partition `A_i` is the set of peers at clockwise distance
    /// `[d(m_i), d(m_{i-1}))` from the partitioning node.
    pub fn from_cw_range(origin: Id, lo: u128, hi: u128) -> Self {
        assert!(lo <= hi && hi <= RING_SIZE, "invalid cw range");
        Arc {
            start: origin.add(lo as u64), // lo < 2^64 unless arc empty
            len: hi - lo,
        }
    }

    /// First position inside the arc.
    #[inline]
    pub fn start(&self) -> Id {
        self.start
    }

    /// Number of ring positions covered.
    #[inline]
    pub fn len(&self) -> u128 {
        self.len
    }

    /// First position *after* the arc (equals `start` for empty and full
    /// arcs; disambiguate with [`Arc::is_full`]).
    #[inline]
    pub fn end(&self) -> Id {
        self.start.add(self.len as u64) // wraps correctly for len == 2^64
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == RING_SIZE
    }

    /// Fraction of the ring covered, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.len as f64 / RING_SIZE as f64
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, p: Id) -> bool {
        (self.start.cw_dist(p) as u128) < self.len
    }

    /// Uniformly random position inside the arc.
    ///
    /// # Panics
    /// If the arc is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Id {
        assert!(!self.is_empty(), "cannot sample the empty arc");
        let offset = if self.is_full() {
            rng.gen::<u64>()
        } else {
            rng.gen_range(0..self.len as u64)
        };
        self.start.add(offset)
    }

    /// Splits at clockwise offset `at` into `([start, start+at), rest)`.
    ///
    /// # Panics
    /// If `at > len`.
    pub fn split_at(&self, at: u128) -> (Arc, Arc) {
        assert!(at <= self.len, "split point outside arc");
        let head = Arc {
            start: self.start,
            len: at,
        };
        let tail = Arc {
            start: self.start.add(at as u64),
            len: self.len - at,
        };
        (head, tail)
    }

    /// The sub-arc from position `from` (inclusive, must lie inside the
    /// arc) to the arc's end.
    pub fn truncate_from(&self, from: Id) -> Arc {
        let d = self.start.cw_dist(from) as u128;
        assert!(
            d <= self.len,
            "truncation point outside arc (d={d}, len={})",
            self.len
        );
        Arc {
            start: from,
            len: self.len - d,
        }
    }

    /// The sub-arc from `start` up to (exclusive) position `to`, which must
    /// lie inside the arc or be its end.
    pub fn truncate_at(&self, to: Id) -> Arc {
        let d = self.start.cw_dist(to) as u128;
        assert!(
            d <= self.len,
            "truncation point outside arc (d={d}, len={})",
            self.len
        );
        Arc {
            start: self.start,
            len: d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn full_and_empty() {
        assert!(Arc::FULL.is_full());
        assert!(!Arc::FULL.is_empty());
        assert!(Arc::EMPTY.is_empty());
        assert!(Arc::FULL.contains(Id::new(12345)));
        assert!(!Arc::EMPTY.contains(Id::new(12345)));
        assert_eq!(Arc::FULL.fraction(), 1.0);
        assert_eq!(Arc::EMPTY.fraction(), 0.0);
    }

    #[test]
    fn between_basic_and_wrapping() {
        let a = Arc::between(Id::new(10), Id::new(20));
        assert_eq!(a.len(), 10);
        assert!(a.contains(Id::new(10)));
        assert!(a.contains(Id::new(19)));
        assert!(!a.contains(Id::new(20)));

        let w = Arc::between(Id::new(u64::MAX - 1), Id::new(2));
        assert_eq!(w.len(), 4);
        assert!(w.contains(Id::new(u64::MAX)));
        assert!(w.contains(Id::new(0)));
        assert!(w.contains(Id::new(1)));
        assert!(!w.contains(Id::new(2)));
    }

    #[test]
    fn between_equal_points_is_empty() {
        let a = Arc::between(Id::new(7), Id::new(7));
        assert!(a.is_empty());
    }

    #[test]
    fn from_cw_range_matches_partition_geometry() {
        let origin = Id::new(100);
        // "peers at clockwise distance [10, 30) from origin"
        let a = Arc::from_cw_range(origin, 10, 30);
        assert!(a.contains(Id::new(110)));
        assert!(a.contains(Id::new(129)));
        assert!(!a.contains(Id::new(130)));
        assert!(!a.contains(Id::new(109)));
    }

    #[test]
    fn end_of_full_arc_wraps_to_start() {
        let f = Arc::new(Id::new(5), RING_SIZE);
        assert_eq!(f.end(), Id::new(5));
        assert!(f.is_full());
    }

    #[test]
    fn sample_stays_inside() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = Arc::between(Id::new(u64::MAX - 10), Id::new(10));
        for _ in 0..1000 {
            assert!(a.contains(a.sample(&mut rng)));
        }
    }

    #[test]
    fn sample_full_ring() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            let p = Arc::FULL.sample(&mut rng);
            assert!(Arc::FULL.contains(p));
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sample_empty_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        Arc::EMPTY.sample(&mut rng);
    }

    #[test]
    fn split_at_partitions() {
        let a = Arc::between(Id::new(0), Id::new(100));
        let (h, t) = a.split_at(40);
        assert_eq!(h.len(), 40);
        assert_eq!(t.len(), 60);
        assert_eq!(t.start(), Id::new(40));
        for x in 0..100u64 {
            let p = Id::new(x);
            assert!(h.contains(p) != t.contains(p));
        }
    }

    #[test]
    fn truncate_from_and_at_partition_the_arc() {
        let a = Arc::between(Id::new(1000), Id::new(3000));
        let near = a.truncate_at(Id::new(2000));
        let far = a.truncate_from(Id::new(2000));
        assert_eq!(near.len() + far.len(), a.len());
        assert!(near.contains(Id::new(1999)));
        assert!(!near.contains(Id::new(2000)));
        assert!(far.contains(Id::new(2000)));
        assert!(far.contains(Id::new(2999)));
        assert!(!far.contains(Id::new(3000)));
    }

    #[test]
    fn truncate_at_median_like_point() {
        // This is exactly the operation partition estimation performs:
        // shrink the current sub-population arc at the estimated median.
        let a = Arc::between(Id::new(1000), Id::new(3000));
        let t = a.truncate_at(Id::new(2000));
        assert_eq!(t.len(), 1000);
        assert_eq!(t.start(), Id::new(1000));
    }

    proptest! {
        #[test]
        fn prop_contains_iff_cw_dist_lt_len(start: u64, len in 0u128..=RING_SIZE, p: u64) {
            let a = Arc::new(Id::new(start), len);
            let d = Id::new(start).cw_dist(Id::new(p)) as u128;
            prop_assert_eq!(a.contains(Id::new(p)), d < len);
        }

        #[test]
        fn prop_split_conserves_membership(start: u64, len in 1u128..=RING_SIZE, at_frac in 0.0f64..1.0, p: u64) {
            let a = Arc::new(Id::new(start), len);
            let at = ((len as f64) * at_frac) as u128;
            let (h, t) = a.split_at(at);
            let p = Id::new(p);
            prop_assert_eq!(a.contains(p), h.contains(p) || t.contains(p));
            prop_assert!(!(h.contains(p) && t.contains(p)));
        }

        #[test]
        fn prop_sample_in_arc(start: u64, len in 1u128..=RING_SIZE, seed: u64) {
            let a = Arc::new(Id::new(start), len);
            let mut rng = SmallRng::seed_from_u64(seed);
            prop_assert!(a.contains(a.sample(&mut rng)));
        }

        #[test]
        fn prop_between_complement_lengths(from: u64, to: u64) {
            let (from, to) = (Id::new(from), Id::new(to));
            prop_assume!(from != to);
            let a = Arc::between(from, to);
            let b = Arc::between(to, from);
            prop_assert_eq!(a.len() + b.len(), RING_SIZE);
        }
    }
}
