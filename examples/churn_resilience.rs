//! Churn resilience: crash waves and continuous churn on a virtual clock.
//!
//! Part 1 replays the paper's crash-wave experiment interactively (kill
//! 10% / 33%, measure the cost climb). Part 2 uses the discrete-event
//! queue for *continuous* churn — joins and crashes interleaved over
//! virtual time with periodic rewiring — the regime the paper calls
//! orthogonal future work.
//!
//! Run with:
//! ```sh
//! cargo run --release --example churn_resilience
//! ```

use oscar::prelude::*;
use oscar::sim::{EventQueue, OverlayBuilder};

#[derive(Debug)]
enum ChurnEvent {
    Join,
    Crash,
    RewireAll,
    Measure,
}

fn main() -> Result<()> {
    // ---- Part 1: crash waves (the paper's Figure 2 protocol). ----
    println!("== crash waves ==");
    for fraction in [0.0, 0.10, 0.33] {
        let mut overlay =
            oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 5);
        overlay.grow_to(1000, &GnutellaKeys::default(), &ConstantDegrees::paper())?;
        if fraction > 0.0 {
            overlay.kill_fraction(fraction)?;
        }
        let stats = overlay.run_queries(&QueryWorkload::UniformPeers, 1000);
        println!(
            "  {:>3.0}% crashed: mean cost {:>6.2} (hops {:.2} + wasted {:.2}), success {:.1}%",
            fraction * 100.0,
            stats.mean_cost,
            stats.mean_hops,
            stats.mean_wasted,
            stats.success_rate * 100.0
        );
    }

    // ---- Part 2: continuous churn on the event queue. ----
    println!("\n== continuous churn (event-driven) ==");
    let mut overlay =
        oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 6);
    let keys = GnutellaKeys::default();
    let degrees = ConstantDegrees::paper();
    overlay.grow_to(500, &keys, &degrees)?;

    let mut queue: EventQueue<ChurnEvent> = EventQueue::new();
    let mut rng = SeedTree::new(77).child(1).rng();
    // Poisson-ish arrivals: joins and crashes every few ticks, a rewire
    // sweep every 200 ticks, a measurement every 100.
    for t in 1..=1000u64 {
        if t % 3 == 0 {
            queue.schedule(oscar::sim::VirtualTime(t), ChurnEvent::Join);
        }
        if t % 4 == 0 {
            queue.schedule(oscar::sim::VirtualTime(t), ChurnEvent::Crash);
        }
        if t % 200 == 0 {
            queue.schedule(oscar::sim::VirtualTime(t), ChurnEvent::RewireAll);
        }
        if t % 100 == 0 {
            queue.schedule(oscar::sim::VirtualTime(t), ChurnEvent::Measure);
        }
    }

    let builder = OscarBuilder::new(OscarConfig::default());
    let mut joins = 0u32;
    let mut crashes = 0u32;
    while let Some((time, event)) = queue.pop() {
        match event {
            ChurnEvent::Join => {
                // Admit one peer with a fresh identifier and build links.
                let net = overlay.network_mut();
                let id = loop {
                    let candidate = keys.sample(&mut rng);
                    if net.idx_of(candidate).is_none() {
                        break candidate;
                    }
                };
                let caps = degrees.sample(&mut rng);
                let p = net.add_peer(id, caps)?;
                let mut join_rng = SeedTree::new(time.0).child(2).rng();
                builder.build_links(net, p, &mut join_rng)?;
                joins += 1;
            }
            ChurnEvent::Crash => {
                let net = overlay.network_mut();
                if net.live_count() > 50 {
                    if let Some(victim) = net.random_live_peer(&mut rng) {
                        net.kill(victim)?;
                        crashes += 1;
                    }
                }
            }
            ChurnEvent::RewireAll => {
                overlay.rewire_all()?;
            }
            ChurnEvent::Measure => {
                let live = overlay.network().live_count();
                let stats = overlay.run_queries(&QueryWorkload::UniformPeers, 300);
                println!(
                    "  t={:>4}  live={:>4}  mean cost {:>6.2}  wasted/query {:>5.2}  success {:>5.1}%",
                    time.0,
                    live,
                    stats.mean_cost,
                    stats.mean_wasted,
                    stats.success_rate * 100.0
                );
            }
        }
    }
    println!("  ({joins} joins, {crashes} crashes processed)");
    Ok(())
}
