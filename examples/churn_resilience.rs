//! Churn resilience: crash waves and continuous churn on a virtual clock.
//!
//! Part 1 replays the paper's crash-wave experiment interactively (kill
//! 10% / 33%, measure the cost climb). Part 2 runs the continuous-churn
//! engine — joins, crashes and graceful departures as independent Poisson
//! processes on the discrete-event queue, with periodic rewire sweeps and
//! steady-state measurement windows — the regime the paper calls
//! orthogonal future work.
//!
//! Run with:
//! ```sh
//! cargo run --release --example churn_resilience
//! ```

use oscar::prelude::*;

fn main() -> Result<()> {
    // ---- Part 1: crash waves (the paper's Figure 2 protocol). ----
    println!("== crash waves ==");
    for fraction in [0.0, 0.10, 0.33] {
        let mut overlay =
            oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 5);
        overlay.grow_to(1000, &GnutellaKeys::default(), &ConstantDegrees::paper())?;
        if fraction > 0.0 {
            overlay.kill_fraction(fraction)?;
        }
        let stats = overlay.run_queries(&QueryWorkload::UniformPeers, 1000);
        println!(
            "  {:>3.0}% crashed: mean cost {:>6.2} (hops {:.2} + wasted {:.2}), success {:.1}%",
            fraction * 100.0,
            stats.mean_cost,
            stats.mean_hops,
            stats.mean_wasted,
            stats.success_rate * 100.0
        );
    }

    // ---- Part 2: continuous churn on the event queue. ----
    //
    // Everything — join identities, link construction, victim picks,
    // inter-arrival gaps — derives from the overlay's own seed tree, so
    // the run below is reproducible from the single seed `6`.
    println!("\n== continuous churn (event-driven) ==");
    let mut overlay =
        oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 6);
    let keys = GnutellaKeys::default();
    let degrees = ConstantDegrees::paper();
    overlay.grow_to(500, &keys, &degrees)?;

    // ~0.33 joins and ~0.25 failures per tick (four-fifths of them
    // crashes, the rest graceful departures): the population climbs
    // slowly while reactive repair rewires the two nearest live ring
    // neighbours of every casualty — O(k) maintenance per event instead
    // of the O(n) whole-network sweeps of `RepairPolicy::SweepEvery`.
    let schedule = ChurnSchedule {
        join_rate: 1.0 / 3.0,
        crash_rate: 0.20,
        depart_rate: 0.05,
        repair: RepairPolicy::Reactive { neighbors_k: 2 },
        window_ticks: 100,
        query_budget: QueryBudget::Fixed(300),
        min_live: 50,
    };
    let windows = overlay.run_continuous_churn(&keys, &degrees, &schedule, 10)?;
    let mut joins = 0u64;
    let mut crashes = 0u64;
    let mut departs = 0u64;
    let mut repairs = 0u64;
    let mut repair_cost = 0u64;
    for w in &windows {
        println!(
            "  t={:>4}  live={:>4}  mean cost {:>6.2}  wasted/query {:>5.2}  success {:>5.1}%  \
             repairs {:>3} ({} msgs)",
            w.end.0,
            w.live_at_end,
            w.queries.mean_cost,
            w.queries.mean_wasted,
            w.queries.success_rate * 100.0,
            w.repairs,
            w.repair_cost,
        );
        joins += w.joins;
        crashes += w.crashes;
        departs += w.departs;
        repairs += w.repairs;
        repair_cost += w.repair_cost;
    }
    println!(
        "  ({joins} joins, {crashes} crashes, {departs} departures; \
         {repairs} reactive repairs costing {repair_cost} messages)"
    );
    Ok(())
}
