//! Heterogeneous swarm: wildly different per-peer link budgets.
//!
//! Peers declare how many links they are willing to carry (dial-up peers a
//! handful, university mirrors hundreds); Oscar must respect every budget
//! while still exploiting the donated capacity. This example builds such a
//! swarm, verifies no budget is exceeded, and reports utilisation by
//! capacity class — the Figure 1(b) story at example scale.
//!
//! Run with:
//! ```sh
//! cargo run --release --example heterogeneous_swarm
//! ```

use oscar::prelude::*;

fn main() -> Result<()> {
    let mut overlay =
        oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 99);

    println!("growing a 1000-peer swarm with spiky (realistic) degree budgets...");
    overlay.grow_to(1000, &GnutellaKeys::default(), &SpikyDegrees::paper())?;
    let net = overlay.network();

    // --- Hard guarantee: nobody carries more than they volunteered. ---
    let mut violations = 0;
    for p in net.all_peers() {
        let peer = net.peer(p);
        if peer.in_degree() > peer.caps.rho_in || peer.out_degree() > peer.caps.rho_out {
            violations += 1;
        }
    }
    println!("budget violations: {violations} (must be 0)");
    assert_eq!(violations, 0);

    // --- Utilisation by capacity class. ---
    let mut classes: Vec<(&str, u32, u32, u64, u64)> = vec![
        ("weak   (rho_in <= 10)", 0, 10, 0, 0),
        ("normal (11..=32)", 11, 32, 0, 0),
        ("strong (33..=64)", 33, 64, 0, 0),
        ("hub    (>= 65)", 65, u32::MAX, 0, 0),
    ];
    for p in net.live_peers() {
        let peer = net.peer(p);
        for class in classes.iter_mut() {
            if (class.1..=class.2).contains(&peer.caps.rho_in) {
                class.3 += peer.in_degree() as u64;
                class.4 += peer.caps.rho_in as u64;
            }
        }
    }
    println!("\nutilisation by capacity class:");
    for (label, _, _, used, cap) in &classes {
        if *cap > 0 {
            println!(
                "  {label:<24} {used:>6} / {cap:>6} links  ({:.1}%)",
                100.0 * *used as f64 / *cap as f64
            );
        }
    }
    println!(
        "\ntotal degree-volume utilisation: {:.1}% (paper reports ~85% at 10k peers)",
        100.0 * degree_volume_utilization(net)
    );

    // --- And it still routes well. ---
    let stats = overlay.run_queries(&QueryWorkload::UniformPeers, 1000);
    println!(
        "search: mean {:.2}, p95 {:.0}, success {:.1}%",
        stats.mean_cost,
        stats.p95_cost,
        stats.success_rate * 100.0
    );
    Ok(())
}
