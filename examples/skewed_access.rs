//! Skewed access load: when queries themselves are Zipf-distributed.
//!
//! The paper's introduction motivates heterogeneity not just in key
//! placement but in *access* patterns — some data is hot. This example
//! compares uniform and Zipf query workloads on the same Oscar overlay and
//! reports how per-peer forwarding load concentrates, and why in-degree
//! budgets still protect weak peers.
//!
//! Run with:
//! ```sh
//! cargo run --release --example skewed_access
//! ```

use oscar::prelude::*;
use oscar::sim::{route_to_owner, RoutePolicy};

fn per_peer_delivery_load(
    overlay: &OscarOverlay,
    workload: &QueryWorkload,
    queries: usize,
    seed: u64,
) -> Vec<u64> {
    let net = overlay.network();
    let mut rng = SeedTree::new(seed).rng();
    let mut deliveries = vec![0u64; net.len()];
    for _ in 0..queries {
        let src = net.random_live_peer(&mut rng).expect("live peers exist");
        let target = workload.draw(net.live_count(), &mut rng);
        let key = match target {
            oscar::keydist::QueryTarget::PeerRank(r) => net.peer(net.live_peer_by_rank(r)).id,
            oscar::keydist::QueryTarget::Key(k) => k,
        };
        let outcome = route_to_owner(net, src, key, &RoutePolicy::default());
        if let Some(dest) = outcome.dest {
            deliveries[dest.as_usize()] += 1;
        }
    }
    deliveries
}

fn gini(loads: &[u64]) -> f64 {
    let mut xs: Vec<f64> = loads.iter().map(|&l| l as f64).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 = xs
        .iter()
        .enumerate()
        .map(|(i, x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

fn main() -> Result<()> {
    let mut overlay =
        oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 21);
    println!("growing 800-peer Oscar overlay...");
    overlay.grow_to(800, &GnutellaKeys::default(), &SpikyDegrees::paper())?;

    let queries = 8000;
    println!("replaying {queries} queries under two access workloads:\n");
    for workload in [
        QueryWorkload::UniformPeers,
        QueryWorkload::ZipfPeers { exponent: 1.0 },
    ] {
        let loads = per_peer_delivery_load(&overlay, &workload, queries, 1234);
        let mut sorted = loads.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: u64 = sorted.iter().take(loads.len() / 100).sum();
        println!("  workload {:<18}", workload.name());
        println!(
            "    delivery load: gini {:.3}, hottest peer served {} queries, top-1% of peers served {:.1}%",
            gini(&loads),
            sorted[0],
            100.0 * top1pct as f64 / queries as f64
        );
    }

    println!(
        "\nnote: hot *delivery* load is a property of the workload — what Oscar\n\
         controls is forwarding fan-in: every peer's in-degree stays within its\n\
         declared budget, so hot traffic cannot recruit unlimited neighbours."
    );
    let util = degree_volume_utilization(overlay.network());
    println!("degree-volume utilisation stays at {:.1}%", util * 100.0);
    Ok(())
}
