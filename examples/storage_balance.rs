//! Storage balance: why identifier choice is a capacity decision.
//!
//! The paper's introduction claims peers should "choose the key-space to
//! be responsible for based on their storage capacity". This example
//! places a heavily clustered corpus (synthetic Gnutella filenames) on
//! networks grown under three join policies and compares who ends up
//! storing what:
//!
//! * `uniform-id`  — hash-DHT style, data-oblivious;
//! * `from-data`   — identifiers sampled from the data distribution;
//! * `storage-aware` — probe-and-split-the-most-loaded (capacity-aware).
//!
//! Run with:
//! ```sh
//! cargo run --release --example storage_balance
//! ```

use oscar::prelude::*;
use oscar::store::{choose_join_id, ItemStore, JoinPolicy, LoadTracker};

fn main() -> Result<()> {
    let corpus_keys = GnutellaKeys::default();
    let mut rng = SeedTree::new(31).rng();
    let store = ItemStore::generate(&corpus_keys, 50_000, &mut rng);
    println!(
        "placing {} items (clustered filename keys) on 500-peer networks:\n",
        store.len()
    );

    for policy in [
        JoinPolicy::UniformId,
        JoinPolicy::FromData,
        JoinPolicy::StorageAware { probes: 16 },
    ] {
        // Grow the membership under the policy (routing links are not the
        // point here, so the network is membership-only).
        let mut net = Network::new(FaultModel::StabilizedRing);
        let mut rng = SeedTree::new(77).child(policy.name().len() as u64).rng();
        // Per-peer loads ride along incrementally: each join charges only
        // the affected arc instead of replaying the full placement.
        let mut tracker = LoadTracker::new(&store);
        // seed peers so probing has someone to ask
        for i in 0..8u64 {
            let id = Id::new(i * (u64::MAX / 8) + 5);
            net.add_peer(id, DegreeCaps::symmetric(27))?;
            tracker.on_join(id);
        }
        for _ in 8..500 {
            let id = choose_join_id(&net, &store, &policy, usize::MAX, &mut rng);
            net.add_peer(id, DegreeCaps::symmetric(27))?;
            tracker.on_join(id);
        }
        let b = tracker.balance();
        println!(
            "  {:<14} max/mean {:>7.2}   gini {:>5.3}   empty peers {:>5.1}%   heaviest peer {:>6} items",
            policy.name(),
            b.max_over_mean,
            b.gini,
            b.empty_fraction * 100.0,
            b.max
        );
    }

    println!(
        "\nuniform ids drown a handful of peers in the clustered corpus. Ids that\n\
         track the data (the paper's data-oriented premise) fix most of it; the\n\
         probe-and-split policy gets comparable balance *without knowing the\n\
         data distribution at all*. The residual imbalance is atomic hot keys:\n\
         thousands of files share one 8-byte prefix, and no range partitioning\n\
         can split a single key — that calls for replication, not placement.\n\
         Oscar's routing stays O(log^2 N) under any of these id layouts."
    );
    Ok(())
}
