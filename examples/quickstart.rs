//! Quickstart: build an Oscar overlay on a skewed key space and query it.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use oscar::prelude::*;

fn main() -> Result<()> {
    // 1. An Oscar overlay: skewed Gnutella-like peer identifiers and the
    //    paper's constant 27-link budget, fault-free, seeded for
    //    reproducibility.
    let mut overlay =
        oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 42);

    println!("growing Oscar overlay to 1000 peers (skewed key space)...");
    overlay.grow_to(1000, &GnutellaKeys::default(), &ConstantDegrees::paper())?;

    // 2. Query it: 1000 lookups between random peers.
    let stats = overlay.run_queries(&QueryWorkload::UniformPeers, 1000);
    println!(
        "search cost: mean {:.2} hops (p50 {:.0}, p95 {:.0}, max {}), success rate {:.1}%",
        stats.mean_cost,
        stats.p50_cost,
        stats.p95_cost,
        stats.max_cost,
        stats.success_rate * 100.0
    );
    println!(
        "theory: worst-case bound log2^2(N) = {:.0}",
        oscar::core::theory::worst_case_search_bound(1000)
    );

    // 3. How well is the heterogeneous in-degree capacity used?
    let utilization = degree_volume_utilization(overlay.network());
    println!("degree-volume utilisation: {:.1}%", utilization * 100.0);

    // 4. Crash a third of the network; the ring self-stabilises, long
    //    links dangle, queries keep working at a higher cost.
    overlay.kill_fraction(0.33)?;
    let after = overlay.run_queries(&QueryWorkload::UniformPeers, 1000);
    println!(
        "after 33% crashes: mean cost {:.2} ({:.2} wasted per query), success rate {:.1}%",
        after.mean_cost,
        after.mean_wasted,
        after.success_rate * 100.0
    );
    Ok(())
}
