//! File-sharing index: the scenario that motivates Oscar.
//!
//! A Gnutella-style network indexes file names *order-preservingly* so
//! that prefix and range queries touch contiguous peers. This example
//! builds the index, then runs point lookups and a prefix (range) scan,
//! showing which peers own which lexical ranges.
//!
//! Run with:
//! ```sh
//! cargo run --release --example file_sharing_index
//! ```

use oscar::keydist::{encode_filename_key, GnutellaKeys};
use oscar::prelude::*;
use oscar::sim::{route_to_owner, RoutePolicy};

fn main() -> Result<()> {
    let corpus = GnutellaKeys::default();
    let mut overlay =
        oscar::core::new_overlay(OscarConfig::default(), FaultModel::StabilizedRing, 7);

    println!("indexing a synthetic Gnutella filename corpus across 800 peers...");
    overlay.grow_to(800, &corpus, &SpikyDegrees::paper())?;

    // --- Point lookups: find the peer responsible for a file name. ---
    let mut rng = SeedTree::new(123).rng();
    println!("\npoint lookups:");
    for _ in 0..5 {
        let filename = corpus.sample_filename(&mut rng);
        let key = encode_filename_key(&filename);
        let src = overlay
            .network()
            .random_live_peer(&mut rng)
            .expect("network is non-empty");
        let outcome = route_to_owner(overlay.network(), src, key, &RoutePolicy::default());
        let owner = outcome.dest.expect("fault-free routing succeeds");
        println!(
            "  {:<28} -> peer at ring position {} in {} hops",
            filename,
            overlay.network().peer(owner).id,
            outcome.hops
        );
    }

    // --- Prefix scan: all indexed names in a lexical range. ---
    // Because the encoding preserves order, the owners of ["m", "n") are a
    // contiguous arc of the ring; `range_scan` routes to the range start
    // and walks successors to the range end.
    let lo = encode_filename_key("m");
    let hi = encode_filename_key("n");
    let src = overlay.network().random_live_peer(&mut rng).unwrap();
    let scan = oscar::core::range_scan(overlay.network(), src, lo, hi, &RoutePolicy::default());
    println!(
        "\nprefix scan 'm*': entry cost {} hops, then {} contiguous owner peers cover the range \
         ({} total messages)",
        scan.entry.hops,
        scan.owners.len(),
        scan.cost()
    );
    println!(
        "(the range holds {:.1}% of peers — files starting with 'm' are popular, \
         and Oscar's partitions adapt to exactly that skew)",
        100.0 * scan.owners.len() as f64 / overlay.network().live_count() as f64
    );
    Ok(())
}
